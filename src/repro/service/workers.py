"""The warm engine pool behind the conversion service.

A one-shot CLI run pays converter construction (knowledge base, compiled
Aho-Corasick automaton, tidy tables) on every invocation.  The service
pays it once: a single :class:`~concurrent.futures.ProcessPoolExecutor`
is spawned at startup through the engine's own worker initializer --
including the ``_PREFORK_CONVERTER`` copy-on-write reuse under fork --
and every micro-batch becomes one
:func:`repro.runtime.engine._convert_chunk` task on it.

``max_workers=1`` runs chunks inline (in a thread, so the event loop
stays responsive) with a single long-lived converter: the deterministic
fast path the lifecycle tests use.
"""

from __future__ import annotations

import asyncio
import itertools
from concurrent.futures import ProcessPoolExecutor

from repro.concepts.knowledge import KnowledgeBase
from repro.convert.config import ConversionConfig
from repro.convert.pipeline import DocumentConverter
from repro.runtime import engine as engine_runtime
from repro.runtime.engine import ChunkPayload
from repro.runtime.faults import ErrorPolicy
from repro.runtime.stats import EngineStats


class PoolClosed(RuntimeError):
    """A chunk was submitted after the pool shut down."""


class WarmEnginePool:
    """A long-lived, pre-warmed chunk-conversion pool.

    Documents are isolated with the engine's ``skip`` policy (a document
    that fails to convert becomes a structured failure in the payload,
    never a dead worker), and every payload's stats are absorbed into
    :attr:`stats`, so ``/metrics`` exposes the full engine registry.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        config: ConversionConfig | None = None,
        *,
        max_workers: int | None = None,
        stats: EngineStats | None = None,
    ) -> None:
        self.kb = kb
        self.config = config or ConversionConfig()
        self.workers = max(1, max_workers) if max_workers else 2
        self.policy = ErrorPolicy.skip()
        self.stats = stats if stats is not None else EngineStats(
            workers=self.workers, chunk_size=0
        )
        self._pool: ProcessPoolExecutor | None = None
        self._inline: DocumentConverter | None = None
        self._chunk_indices = itertools.count()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Build the converter parent-side and spawn the pool (no-op for
        the inline single-worker mode)."""
        if self.workers == 1:
            self._inline = DocumentConverter(self.kb, self.config)
            return
        converter = DocumentConverter(self.kb, self.config)
        # Same prefork handshake as CorpusEngine._spawn_pool: under fork
        # the initializer sees these exact objects and adopts the built
        # converter copy-on-write instead of rebuilding per worker.
        engine_runtime._PREFORK_CONVERTER = converter
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=engine_runtime._init_worker,
            initargs=(
                self.kb,
                self.config,
                None,  # bayes
                False,  # trace
                False,  # provenance
                self.policy,
                True,  # collect_xml: results go back over HTTP
                None,  # sink
            ),
        )

    def shutdown(self, *, wait: bool = True) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=not wait)
            self._pool = None

    def worker_pids(self) -> list[int]:
        """Live worker process ids (empty in inline mode); exposed via
        ``/healthz`` so drain tests can assert nothing is orphaned."""
        if self._pool is None:
            return []
        processes = getattr(self._pool, "_processes", None) or {}
        return sorted(processes.keys())

    # -- conversion ----------------------------------------------------------

    async def convert_chunk(
        self, sources: list[str], base: int
    ) -> ChunkPayload:
        """Convert one micro-batch on the warm pool (or inline thread).

        Raises whatever the pool raises -- a BrokenProcessPool reaches
        the batcher, which rebuilds and retries once.
        """
        if self._closed:
            raise PoolClosed("engine pool is shut down")
        index = next(self._chunk_indices)
        loop = asyncio.get_running_loop()
        if self._inline is not None:
            converter = self._inline
            payload = await loop.run_in_executor(
                None,
                lambda: engine_runtime._run_chunk(
                    converter, index, base, sources, policy=self.policy
                ),
            )
        else:
            assert self._pool is not None, "pool not started"
            payload = await asyncio.wrap_future(
                self._pool.submit(
                    engine_runtime._convert_chunk,
                    (index, base, sources, None),
                )
            )
        self._absorb(payload)
        return payload

    def rebuild(self) -> None:
        """Replace a broken pool (worker OOM-killed / segfaulted)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self.stats.record_pool_rebuild()
            self.start()

    def _absorb(self, payload: ChunkPayload) -> None:
        self.stats.absorb(payload.stats)
        # The engine keeps every ChunkStats for post-run reporting; a
        # daemon absorbing chunks forever must not.  The registry has
        # already folded the counters in, so drop the per-chunk detail
        # and cap the retained failure records.
        self.stats.per_chunk.clear()
        for failure in payload.failures:
            self.stats.failures.append(failure)
        del self.stats.failures[:-100]

"""Micro-batching with bounded backpressure.

Concurrent clients each submit one (or a few) documents; the engine
wants chunks.  The batcher bridges the two: submissions enqueue onto a
bounded per-lane :class:`asyncio.Queue` (a full queue makes ``await
submit()`` wait -- callers are never dropped), and one collector task
per lane coalesces queued documents into chunks of up to ``max_batch``.

Batching is adaptive: while the dispatch semaphore has free slots a
lone document ships immediately (no added latency on an idle service);
once every slot is busy the collector waits up to ``max_wait`` for
companions, amortizing per-chunk overhead exactly when load makes it
worthwhile.

Lanes are keyed by ``(topic, fold)``: a chunk's
:class:`~repro.schema.accumulator.PathAccumulator` is batch-wide, so a
fold must cover the whole chunk -- mixing fold and non-fold documents
in one chunk would fold strangers' statistics into the live schema.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.service.contracts import ConvertRequest, DocumentOutcome


class ServiceDraining(RuntimeError):
    """A submission arrived after drain began (HTTP 503)."""


@dataclass
class PendingDocument:
    """One enqueued document: the request plus its result future."""

    request: ConvertRequest
    future: "asyncio.Future[DocumentOutcome]"
    enqueued_at: float = field(default_factory=time.monotonic)


Lane = tuple[str, bool]
_CLOSE = object()

DispatchFn = Callable[[Lane, list[PendingDocument]], Awaitable[None]]


class MicroBatcher:
    """Coalesces concurrent submissions into engine chunks."""

    def __init__(
        self,
        dispatch: DispatchFn,
        *,
        max_batch: int = 16,
        max_wait: float = 0.005,
        max_queue: int = 1024,
        max_inflight: int = 8,
    ) -> None:
        self._dispatch = dispatch
        self.max_batch = max(1, max_batch)
        self.max_wait = max_wait
        self.max_queue = max(1, max_queue)
        self._inflight = asyncio.Semaphore(max(1, max_inflight))
        self._queues: dict[Lane, asyncio.Queue] = {}
        self._collectors: dict[Lane, asyncio.Task] = {}
        self._dispatches: set[asyncio.Task] = set()
        self._draining = False

    # -- submission ----------------------------------------------------------

    async def submit(self, request: ConvertRequest) -> DocumentOutcome:
        """Enqueue one document and wait for its outcome.

        Backpressure, not load-shedding: a full lane queue blocks the
        caller (and therefore the HTTP read loop for that client) until
        the engine catches up.  Zero dropped requests by construction.
        """
        if self._draining:
            raise ServiceDraining("service is draining")
        lane: Lane = (request.topic, request.fold)
        queue = self._lane_queue(lane)
        pending = PendingDocument(
            request, asyncio.get_running_loop().create_future()
        )
        await queue.put(pending)
        return await pending.future

    def _lane_queue(self, lane: Lane) -> asyncio.Queue:
        queue = self._queues.get(lane)
        if queue is None:
            queue = self._queues[lane] = asyncio.Queue(maxsize=self.max_queue)
            self._collectors[lane] = asyncio.get_running_loop().create_task(
                self._collect(lane, queue)
            )
        return queue

    # -- collection ----------------------------------------------------------

    async def _collect(self, lane: Lane, queue: asyncio.Queue) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await queue.get()
            if first is _CLOSE:
                return
            batch = [first]
            deadline = loop.time() + self.max_wait
            closing = False
            while len(batch) < self.max_batch:
                # Drain whatever is already queued for free.
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    item = None
                if item is None:
                    # Nothing waiting: only linger for companions when
                    # every dispatch slot is busy anyway.
                    if not self._inflight.locked():
                        break
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(queue.get(), remaining)
                    except asyncio.TimeoutError:
                        break
                if item is _CLOSE:
                    closing = True
                    break
                batch.append(item)
            await self._inflight.acquire()
            task = loop.create_task(self._run_dispatch(lane, batch))
            self._dispatches.add(task)
            task.add_done_callback(self._dispatches.discard)
            if closing:
                return

    async def _run_dispatch(
        self, lane: Lane, batch: list[PendingDocument]
    ) -> None:
        try:
            await self._dispatch(lane, batch)
        except Exception as exc:  # pragma: no cover - dispatch guards itself
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
        finally:
            self._inflight.release()

    # -- drain ---------------------------------------------------------------

    async def drain(self) -> None:
        """Stop accepting, flush every queued document, and wait for all
        in-flight dispatches: the graceful half of SIGTERM."""
        self._draining = True
        for queue in self._queues.values():
            await queue.put(_CLOSE)
        if self._collectors:
            await asyncio.gather(*self._collectors.values())
        while self._dispatches:
            await asyncio.gather(*list(self._dispatches), return_exceptions=True)

    @property
    def draining(self) -> bool:
        return self._draining

    def queued(self) -> int:
        return sum(queue.qsize() for queue in self._queues.values())

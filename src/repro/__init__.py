"""repro -- reproduction of Chung, Gertz & Sundaresan (ICDE 2002),
"Reverse Engineering for Web Data: From Visual to Semantic Structures".

The library converts topic-specific HTML documents into concept-tagged
XML documents (document restructuring rules driven by a small knowledge
base), discovers a *majority schema* over the result, derives a DTD from
it, and maps non-conforming documents onto that DTD for integration into
an XML repository.

Quickstart::

    from repro import (
        build_resume_knowledge_base, DocumentConverter,
        extract_paths, mine_frequent_paths, MajoritySchema, derive_dtd,
    )

    kb = build_resume_knowledge_base()
    converter = DocumentConverter(kb)
    results = [converter.convert(html) for html in corpus_html]

    docs = [extract_paths(r.root) for r in results]
    frequent = mine_frequent_paths(docs, sup_threshold=0.4)
    schema = MajoritySchema.from_frequent_paths(frequent)
    print(derive_dtd(schema, docs).render())

Subpackages: ``htmlparse`` (from-scratch HTML parser + Tidy-style
cleanser), ``dom`` (ordered-tree document model), ``concepts`` (domain
knowledge, synonym matcher, naive Bayes), ``convert`` (the four
restructuring rules), ``schema`` (frequent paths, majority schema, DTD,
baselines), ``mapping`` (tree edit distance, conformance, repository),
``corpus`` (synthetic resume corpus + simulated web/crawler),
``evaluation`` (the paper's experiments), ``runtime`` (the parallel
streaming corpus engine with mergeable path statistics), ``obs``
(span tracing, metrics registry, per-document provenance).
"""

from repro.concepts import (
    Concept,
    ConceptInstance,
    ConceptRole,
    ConstraintSet,
    KnowledgeBase,
    MultinomialNaiveBayes,
    SynonymMatcher,
    build_resume_knowledge_base,
)
from repro.convert import ConversionConfig, ConversionResult, DocumentConverter
from repro.corpus import ResumeCorpusGenerator, SimulatedWeb, TopicCrawler
from repro.dom import Element, Text, to_xml
from repro.htmlparse import parse_html, tidy
from repro.mapping import (
    XMLRepository,
    conform_document,
    tree_edit_distance,
    validate_document,
)
from repro.obs import MetricsRegistry, ProvenanceLog, Tracer
from repro.runtime import CorpusEngine, EngineConfig, EngineStats
from repro.schema import (
    DTD,
    MajoritySchema,
    PathAccumulator,
    build_dataguide,
    build_lower_bound_schema,
    derive_dtd,
    extract_paths,
    mine_frequent_paths,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # knowledge
    "Concept",
    "ConceptInstance",
    "ConceptRole",
    "ConstraintSet",
    "KnowledgeBase",
    "SynonymMatcher",
    "MultinomialNaiveBayes",
    "build_resume_knowledge_base",
    # conversion
    "DocumentConverter",
    "ConversionConfig",
    "ConversionResult",
    # dom / parsing
    "Element",
    "Text",
    "to_xml",
    "parse_html",
    "tidy",
    # schema discovery
    "extract_paths",
    "mine_frequent_paths",
    "MajoritySchema",
    "derive_dtd",
    "DTD",
    "build_dataguide",
    "build_lower_bound_schema",
    # mapping
    "tree_edit_distance",
    "validate_document",
    "conform_document",
    "XMLRepository",
    # corpus
    "ResumeCorpusGenerator",
    "SimulatedWeb",
    "TopicCrawler",
    # runtime
    "CorpusEngine",
    "EngineConfig",
    "EngineStats",
    "PathAccumulator",
    # observability
    "Tracer",
    "MetricsRegistry",
    "ProvenanceLog",
]

"""Tree construction from the HTML token stream.

Implements the forgiving subset of the HTML4/DOM tree-building rules the
paper's document model requires:

* void elements never open a scope,
* optional end tags are implied (``<li>``, ``<p>``, table parts),
* mismatched end tags close intervening open elements when a matching
  open element exists, and are dropped otherwise,
* everything is rooted under ``html > body`` even when those tags are
  missing from the source.

Comments and doctype tokens are discarded: they carry no information the
restructuring rules use.
"""

from __future__ import annotations

import re

from repro.dom.node import Element, Text
from repro.htmlparse.taginfo import is_void, tags_closed_by
from repro.htmlparse.tokenizer import TokenType, tokenize

_WHITESPACE_ONLY_RE = re.compile(r"^\s*$")

# Structural tags handled specially at the document level.
_DOCUMENT_TAGS = frozenset({"html", "head", "body"})


class _TreeBuilder:
    """Assembles tokens into an element tree."""

    def __init__(self, *, fragment: bool) -> None:
        self.fragment = fragment
        if fragment:
            self.root = Element("#fragment")
            self.body = self.root
        else:
            self.root = Element("html")
            self.body = Element("body")
        self.stack: list[Element] = [self.body]
        self.head: Element | None = None

    # -- stack helpers ---------------------------------------------------

    def _current(self) -> Element:
        return self.stack[-1]

    def _open_tags(self) -> list[str]:
        return [el.tag for el in self.stack]

    def _close_implied(self, tag: str) -> None:
        closers = tags_closed_by(tag)
        if not closers:
            return
        while len(self.stack) > 1 and self._current().tag in closers:
            self.stack.pop()

    # -- token handlers ----------------------------------------------------

    def start_tag(self, name: str, attrs: dict[str, str], self_closing: bool) -> None:
        if not self.fragment and name in _DOCUMENT_TAGS:
            self._document_tag(name, attrs)
            return
        self._close_implied(name)
        element = Element(name, attrs)
        self.stack[-1].adopt_new(element)
        if not is_void(name) and not self_closing:
            self.stack.append(element)

    def _document_tag(self, name: str, attrs: dict[str, str]) -> None:
        if name == "html":
            self.root.attrs.update(attrs)
        elif name == "head":
            if self.head is None:
                self.head = Element("head", attrs)
        elif name == "body":
            self.body.attrs.update(attrs)

    def end_tag(self, name: str) -> None:
        if not self.fragment and name in _DOCUMENT_TAGS:
            return
        stack = self.stack
        for open_element in reversed(stack):
            if open_element.tag == name:
                break
        else:
            return  # stray end tag: drop it
        while len(stack) > 1:
            closed = stack.pop()
            if closed.tag == name:
                return
        # ``name`` was the root scope marker itself; nothing else to do.

    def text(self, data: str) -> None:
        if _WHITESPACE_ONLY_RE.match(data):
            return
        current = self.stack[-1]
        # Merge adjacent text nodes so downstream tokenization sees whole
        # topic sentences.
        children = current.children
        if children and isinstance(children[-1], Text):
            children[-1].text += data
        else:
            current.adopt_new(Text(data))

    def finish(self) -> Element:
        if self.fragment:
            return self.root
        if self.head is not None:
            self.root.append_child(self.head)
        self.root.append_child(self.body)
        return self.root


def parse_html(source: str, *, fast: bool = True) -> Element:
    """Parse an HTML document string into an element tree.

    Returns the ``html`` root element; body content hangs under its
    ``body`` child regardless of whether the source declared one.
    ``fast=False`` routes through the legacy per-character tokenizer
    (the differential oracle); the tree is identical either way.
    """
    builder = _TreeBuilder(fragment=False)
    return _run(builder, source, fast=fast)


def parse_fragment(source: str, *, fast: bool = True) -> Element:
    """Parse an HTML fragment; returns a ``#fragment`` container element."""
    builder = _TreeBuilder(fragment=True)
    return _run(builder, source, fast=fast)


def _run(builder: _TreeBuilder, source: str, *, fast: bool = True) -> Element:
    start_tag = builder.start_tag
    end_tag = builder.end_tag
    text = builder.text
    start_type = TokenType.START_TAG
    end_type = TokenType.END_TAG
    text_type = TokenType.TEXT
    for token in tokenize(source, fast=fast):
        token_type = token.type
        if token_type is start_type:
            start_tag(token.data, token.attrs, token.self_closing)
        elif token_type is text_type:
            text(token.data)
        elif token_type is end_type:
            end_tag(token.data)
        # comments and doctype: ignored
    return builder.finish()


def body_of(document: Element) -> Element:
    """Return the ``body`` element of a parsed document.

    Accepts either a full document (``html`` root) or a fragment, in which
    case the fragment container itself is returned.
    """
    if document.tag in ("body", "#fragment"):
        return document
    for child in document.element_children():
        if child.tag == "body":
            return child
    return document

"""Catalog of HTML tag classes used by parsing and restructuring.

Section 2.1 divides HTML elements into *block level* elements (document
structure: headings, lists, tables, text containers) and *text level*
elements (inline font markup).  Section 4 lists the concrete tag sets the
authors used for grouping and list detection; those sets are reproduced in
:data:`DEFAULT_GROUP_TAGS` and :data:`DEFAULT_LIST_TAGS`.
"""

from __future__ import annotations

# Elements that never have content or an end tag.
VOID_TAGS = frozenset(
    "area base basefont br col embed frame hr img input isindex link meta param source track wbr".split()
)

# Elements whose raw content is not parsed as markup.
RAW_TEXT_TAGS = frozenset({"script", "style", "textarea", "title", "xmp"})

HEADING_TAGS = frozenset({"h1", "h2", "h3", "h4", "h5", "h6"})

LIST_CONTAINER_TAGS = frozenset({"ul", "ol", "dl", "dir", "menu"})

LIST_ITEM_TAGS = frozenset({"li", "dt", "dd"})

TABLE_TAGS = frozenset({"table", "thead", "tbody", "tfoot", "tr", "td", "th", "caption", "colgroup"})

BLOCK_TAGS = frozenset(
    {
        "address",
        "blockquote",
        "body",
        "center",
        "div",
        "fieldset",
        "form",
        "head",
        "hr",
        "html",
        "p",
        "pre",
    }
    | HEADING_TAGS
    | LIST_CONTAINER_TAGS
    | LIST_ITEM_TAGS
    | TABLE_TAGS
)

INLINE_TAGS = frozenset(
    "a abbr acronym b basefont big cite code em font i kbd s samp small span strike strong sub sup tt u var".split()
)

# Section 4: tags whose repetition signals sibling groups, with grouping
# priority weights (higher weight groups first; headings dominate).
DEFAULT_GROUP_TAG_WEIGHTS: dict[str, int] = {
    "h1": 100,
    "h2": 95,
    "h3": 90,
    "h4": 85,
    "h5": 80,
    "h6": 75,
    "title": 70,
    "div": 60,
    "p": 55,
    "tr": 50,
    "dt": 45,
    "dd": 40,
    "li": 40,
    "u": 30,
    "strong": 30,
    "b": 30,
    "em": 25,
    "i": 25,
}

DEFAULT_GROUP_TAGS = frozenset(DEFAULT_GROUP_TAG_WEIGHTS)

# Section 4: tags "known to exhibit a list structure" for the
# consolidation rule.
DEFAULT_LIST_TAGS = frozenset(
    {"body", "table", "dl", "ul", "ol", "dir", "menu"}
)

# Implied-end-tag policy: opening tag -> set of open tags it closes.
_SIBLING_CLOSERS: dict[str, frozenset[str]] = {
    "li": frozenset({"li"}),
    "dt": frozenset({"dt", "dd"}),
    "dd": frozenset({"dt", "dd"}),
    "tr": frozenset({"tr", "td", "th"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
    "option": frozenset({"option"}),
    "p": frozenset({"p"}),
    "thead": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
    "tbody": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
    "tfoot": frozenset({"thead", "tbody", "tfoot", "tr", "td", "th"}),
}

# A new block element implicitly terminates an open paragraph.
_P_CLOSERS = (
    BLOCK_TAGS - {"html", "body", "head"}
) | frozenset({"p"})


# Flat tag -> closed-set table, precomputed once at import so the
# parser's per-start-tag lookup is a single dict probe instead of a set
# construction.  Sorted iteration keeps the table's build order
# deterministic regardless of hash seed.
_EMPTY_TAGSET: frozenset[str] = frozenset()
_CLOSED_BY: dict[str, frozenset[str]] = {}
for _tag in sorted(set(_SIBLING_CLOSERS) | _P_CLOSERS):
    _closed = set(_SIBLING_CLOSERS.get(_tag, _EMPTY_TAGSET))
    if _tag in _P_CLOSERS:
        _closed.add("p")
    _CLOSED_BY[_tag] = frozenset(_closed)
del _tag, _closed


def tags_closed_by(tag: str) -> frozenset[str]:
    """Open tags implicitly closed when ``tag`` starts.

    Models the HTML4 optional-end-tag rules: a ``<li>`` closes a previous
    ``<li>``, any block element closes an open ``<p>``, table parts close
    each other, and so on.
    """
    return _CLOSED_BY.get(tag, _EMPTY_TAGSET)


def is_void(tag: str) -> bool:
    """True for content-less elements such as ``<br>``."""
    return tag in VOID_TAGS


def is_block(tag: str) -> bool:
    """True for block-level elements (Section 2.1)."""
    return tag in BLOCK_TAGS


def is_inline(tag: str) -> bool:
    """True for text-level (inline) elements (Section 2.1)."""
    return tag in INLINE_TAGS


def is_heading(tag: str) -> bool:
    """True for ``h1``..``h6``."""
    return tag in HEADING_TAGS


def heading_level(tag: str) -> int:
    """1..6 for headings, 0 otherwise."""
    if is_heading(tag):
        return int(tag[1])
    return 0


def is_html_tag(tag: str) -> bool:
    """True when ``tag`` is a known HTML tag (case-insensitive).

    The conversion pipeline marks concept elements with upper-case names;
    this predicate is how structure rules tell residual HTML markup apart
    from already-recovered concept elements.
    """
    return tag.lower() in _ALL_HTML_TAGS


_ALL_HTML_TAGS = (
    VOID_TAGS
    | RAW_TEXT_TAGS
    | BLOCK_TAGS
    | INLINE_TAGS
    | frozenset(
        "applet body head html iframe map noframes noscript object optgroup option select caption".split()
    )
)

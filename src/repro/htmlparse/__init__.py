"""From-scratch HTML parsing substrate.

The paper assumes HTML documents arrive as ordered trees "by adopting the
Document Object Model" and notes that running an HTML cleanser (Tidy)
first improves accuracy (Section 2.4).  This package supplies both pieces
without external dependencies:

* :mod:`repro.htmlparse.entities` -- character-reference decoding.
* :mod:`repro.htmlparse.tokenizer` -- a streaming HTML lexer.
* :mod:`repro.htmlparse.parser` -- tree construction with HTML4-style
  implied end tags (``<p>``, ``<li>``, table parts, ...).
* :mod:`repro.htmlparse.tidy` -- a cleanser in the spirit of HTML Tidy.
* :mod:`repro.htmlparse.taginfo` -- the block/inline/list/heading tag
  catalog the restructuring rules consult.
"""

from repro.htmlparse.parser import parse_fragment, parse_html
from repro.htmlparse.tidy import tidy
from repro.htmlparse.tokenizer import Token, TokenType, tokenize

__all__ = [
    "parse_html",
    "parse_fragment",
    "tidy",
    "tokenize",
    "Token",
    "TokenType",
]

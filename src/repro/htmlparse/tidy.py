"""An HTML cleanser in the spirit of HTML Tidy.

Section 2.4 observes that although the restructuring heuristics tolerate
ill-formed HTML, "applying HTML cleansing tools (such as HTML Tidy) can
improve the accuracy of resulting XML documents."  This module provides
the cleansing pass for that ablation (experiment E6): it operates on an
already-parsed tree and repairs the malformations our noise injector (and
the era's hand-written HTML) produce.

Fix-ups applied, in order:

1. *Heading/inline nesting repair* -- block-level children of a heading
   or of an inline element (the fallout of a dropped ``</h2>`` or an
   unclosed ``<font>``) are moved out to become following siblings.
2. *Orphan list items* -- runs of ``li`` outside a list container are
   wrapped in a ``ul``; orphan ``dt``/``dd`` runs are wrapped in a ``dl``.
3. *Orphan table parts* -- runs of ``tr`` outside a table are wrapped in a
   ``table``; ``td``/``th`` outside a row are wrapped in a ``tr``.
4. *Empty inline removal* -- inline elements with no content are deleted.
5. *Redundant inline collapse* -- ``<b><b>x</b></b>`` becomes ``<b>x</b>``.
6. *Whitespace normalization* -- runs of whitespace in text nodes collapse
   to a single space (outside ``pre``).

Two implementations share this contract.  :func:`_tidy_legacy` is the
original one-pass-per-fix-up form: six full postorder traversals, each
materialized with ``list(iter_postorder(root))``, plus a per-text-node
``ancestors()`` scan for ``pre`` detection.  :func:`_tidy_fast` (the
default) snapshots the tree **once** and drives every pass off that
snapshot as plain list loops, with single-rebuild child-list surgery
instead of per-node ``index_in_parent()``/``detach()`` rescans.  The two
are proven tree-identical by the hypothesis property suite
(tests/test_tidy_properties.py), the pinned fixtures in
tests/golden/tidy_edge/, and the engine-level byte-identical
differential (tests/test_fast_tidy_differential.py); the legacy form is
kept verbatim as the differential oracle behind
``ConversionConfig.fast_tidy``.

Why one snapshot suffices -- and why the passes cannot fuse further:

* Passes 1-5 never create or destroy a heading, inline, or text node
  (pass 3's wrappers are ``ul``/``dl``/``table``/``tr``; pass 4 deletes
  only childless inlines; pass 5's splice moves children out before the
  delete), so each pass's legacy re-traversal visits exactly the nodes
  the original snapshot already holds.
* Every pass's per-node action reads/writes only the node and its
  current parent, and hoisting/splicing only ever *shrinks* ancestor
  sets (wrap adds only never-revisited wrapper ancestors), so the
  original postorder remains children-first for the tree each later
  pass observes -- processing the stale snapshot order is equivalent.
* The passes themselves must stay sequential: a heading's hoist must
  not see blocks an inline descendant hoists into it later (pass 1 vs
  2), wrapping must wait for every hoist to finish assembling sibling
  runs (3 after 1-2), and ``<b><b ...>`` shows pass 5 reading parent
  emptiness that only the *completed* pass 4 establishes.
"""

from __future__ import annotations

import re

from repro.dom.node import Element, Node, Text
from repro.dom.treeops import collect_postorder, iter_postorder
from repro.htmlparse.taginfo import (
    BLOCK_TAGS,
    HEADING_TAGS,
    INLINE_TAGS,
    LIST_CONTAINER_TAGS,
    LIST_ITEM_TAGS,
    is_block,
    is_heading,
    is_inline,
)

_WS_RE = re.compile(r"\s+")
# Matches exactly the strings `_WS_RE.sub(" ", s).strip()` would change:
# leading/trailing whitespace, a doubled run, or any whitespace that is
# not a plain space.  No match means normalization is the identity, so
# the fast path skips the sub+strip allocation for already-clean text.
_WS_DIRTY_RE = re.compile(r"^\s|\s$|\s\s|[^\S ]")

# Orphan-wrapping rule table (satellite fix: these used to be rebuilt as
# fresh frozensets/lambdas per node visit inside _wrap_orphans).
_LI_TAGS = frozenset({"li"})
_DL_ITEMS = frozenset({"dt", "dd"})
_TR_TAGS = frozenset({"tr"})
_TABLE_CELLS = frozenset({"td", "th"})
_TABLE_SECTION_TAGS = frozenset({"table", "thead", "tbody", "tfoot"})


def _is_li(el: Element) -> bool:
    return el.tag in _LI_TAGS


def _is_dl_item(el: Element) -> bool:
    return el.tag in _DL_ITEMS


def _is_tr(el: Element) -> bool:
    return el.tag == "tr"


def _is_table_cell(el: Element) -> bool:
    return el.tag in _TABLE_CELLS


def tidy(root: Element, *, fast: bool = True) -> Element:
    """Cleanse a parsed HTML tree in place and return it.

    ``fast`` selects the single-snapshot implementation (the default);
    ``fast=False`` runs the six-traversal legacy oracle.  Both produce
    identical trees.
    """
    if fast:
        return _tidy_fast(root)
    return _tidy_legacy(root)


# ---------------------------------------------------------------------------
# the legacy implementation (differential oracle)


def _tidy_legacy(root: Element) -> Element:
    """The original six-traversal cleanser, kept as the oracle."""
    _repair_heading_nesting(root)
    _repair_inline_block_nesting(root)
    _wrap_orphans(root)
    _drop_empty_inlines(root)
    _collapse_redundant_inlines(root)
    _normalize_whitespace(root)
    return root


# 1. heading nesting


def _repair_heading_nesting(root: Element) -> None:
    for node in list(iter_postorder(root)):
        if not isinstance(node, Element) or not is_heading(node.tag):
            continue
        if node.parent is None:
            continue
        misplaced = [
            child
            for child in node.element_children()
            if is_block(child.tag) or is_heading(child.tag)
        ]
        parent = node.parent
        insert_at = node.index_in_parent() + 1
        for child in misplaced:
            child.detach()
            parent.insert_child(insert_at, child)
            insert_at += 1


def _repair_inline_block_nesting(root: Element) -> None:
    """Move block-level children out of inline elements.

    An unclosed ``<font>`` or ``<b>`` swallows the block elements that
    follow it; HTML Tidy hoists them back out, restoring the sibling
    structure the grouping rule depends on.
    """
    for node in list(iter_postorder(root)):
        if not isinstance(node, Element) or not is_inline(node.tag):
            continue
        if node.parent is None:
            continue
        misplaced = [
            child
            for child in node.element_children()
            if is_block(child.tag) or is_heading(child.tag)
        ]
        parent = node.parent
        insert_at = node.index_in_parent() + 1
        for child in misplaced:
            child.detach()
            parent.insert_child(insert_at, child)
            insert_at += 1


# 2. orphan wrapping


def _wrap_orphans(root: Element) -> None:
    for node in list(iter_postorder(root)):
        if not isinstance(node, Element):
            continue
        _wrap_runs(node, _is_li, "ul", forbidden_parents=LIST_CONTAINER_TAGS)
        _wrap_runs(node, _is_dl_item, "dl", forbidden_parents=LIST_CONTAINER_TAGS)
        _wrap_runs(node, _is_tr, "table", forbidden_parents=_TABLE_SECTION_TAGS)
        _wrap_runs(node, _is_table_cell, "tr", forbidden_parents=_TR_TAGS)


def _wrap_runs(parent, predicate, wrapper_tag: str, *, forbidden_parents: frozenset[str]) -> None:
    """Wrap maximal runs of matching children under a new wrapper element."""
    if parent.tag in forbidden_parents:
        return
    index = 0
    while index < len(parent.children):
        child = parent.children[index]
        if isinstance(child, Element) and predicate(child):
            run = [child]
            scan = index + 1
            while scan < len(parent.children):
                nxt = parent.children[scan]
                if isinstance(nxt, Element) and predicate(nxt):
                    run.append(nxt)
                    scan += 1
                elif isinstance(nxt, Text) and not nxt.text.strip():
                    scan += 1
                else:
                    break
            wrapper = Element(wrapper_tag)
            parent.insert_child(index, wrapper)
            for item in run:
                wrapper.append_child(item)
        index += 1


# 4. empty inline removal


def _drop_empty_inlines(root: Element) -> None:
    for node in list(iter_postorder(root)):
        if (
            isinstance(node, Element)
            and node.parent is not None
            and is_inline(node.tag)
            and not node.children
            and not node.get_val()
        ):
            node.detach()


# 5. redundant inline collapse


def _collapse_redundant_inlines(root: Element) -> None:
    for node in list(iter_postorder(root)):
        if not isinstance(node, Element) or node.parent is None:
            continue
        if not is_inline(node.tag):
            continue
        parent = node.parent
        if isinstance(parent, Element) and parent.tag == node.tag and len(parent.children) == 1:
            # parent is the same inline tag wrapping only this node:
            # splice this node's children into the parent.
            for child in list(node.children):
                parent.append_child(child)
            node.detach()


# 6. whitespace


def _normalize_whitespace(root: Element) -> None:
    for node in iter_postorder(root):
        if isinstance(node, Text) and not _inside_pre(node):
            node.text = _WS_RE.sub(" ", node.text).strip()
    # Remove text nodes that became empty.
    for node in list(iter_postorder(root)):
        if isinstance(node, Text) and not node.text and node.parent is not None:
            node.detach()


def _inside_pre(node: Node) -> bool:
    return any(ancestor.tag == "pre" for ancestor in node.ancestors())


# ---------------------------------------------------------------------------
# the fast implementation: one snapshot, six list loops


def _tidy_fast(root: Element) -> Element:
    # One materialized postorder serves every pass (see the module
    # docstring for why the stale snapshot order stays valid).
    headings: list[Element] = []
    inlines: list[Element] = []
    elements: list[Element] = []
    texts: list[Text] = []
    saw_pre = False
    for node in collect_postorder(root):
        if isinstance(node, Text):
            texts.append(node)
            continue
        elements.append(node)
        tag = node.tag
        if tag in INLINE_TAGS:
            inlines.append(node)
        elif tag in HEADING_TAGS:
            headings.append(node)
        elif tag == "pre":
            saw_pre = True

    # ``pre`` membership, resolved once up front instead of one
    # ancestors() walk per text node.  Passes 1-5 never add or remove a
    # ``pre`` ancestor (hoisting removes heading/inline ancestors,
    # wrapping adds ul/dl/table/tr ones, the collapse removes a same-tag
    # inline), so the original-tree answer still holds at pass 6.
    pre_text_ids = _pre_text_ids(elements) if saw_pre else frozenset()

    # Passes 1+2: hoist block children out of headings, then inlines.
    for node in headings:
        _hoist_block_children(node)
    for node in inlines:
        _hoist_block_children(node)

    # Pass 3: orphan wrapping.  Wrap actions touch only the visited
    # node's own child list, so they are independent across nodes.
    for node in elements:
        _wrap_orphans_at(node)

    # Pass 4: drop childless, val-less inlines (snapshot order is
    # children-first, so an inline emptied by a dropped child is seen
    # after that child).
    for node in inlines:
        if node.parent is not None and not node.children and not node.attrs.get("val"):
            node.detach()

    # Pass 5: collapse <b><b>x</b></b>; the splice is a single child
    # list hand-off instead of per-child append_child/detach rescans.
    for node in inlines:
        parent = node.parent
        if parent is None:
            continue
        if parent.tag == node.tag and len(parent.children) == 1:
            moved = node.take_children()
            node.detach()
            parent.adopt_all(moved)

    # Pass 6: normalize whitespace and drop emptied text nodes in one
    # loop (the legacy form walks the tree twice for this); batch the
    # removals so each affected parent's child list is rebuilt once.
    dropped: list[Text] = []
    for text in texts:
        value = text.text
        if id(text) not in pre_text_ids:
            if _WS_DIRTY_RE.search(value) is not None:
                value = _WS_RE.sub(" ", value).strip()
                text.text = value
        if not value and text.parent is not None:
            dropped.append(text)
    if dropped:
        dead = {id(text) for text in dropped}
        seen_parents: set[int] = set()
        for text in dropped:
            parent = text.parent
            if parent is None or id(parent) in seen_parents:
                continue
            seen_parents.add(id(parent))
            parent.children = [
                child for child in parent.children if id(child) not in dead
            ]
        for text in dropped:
            text.parent = None
    return root


def _pre_text_ids(elements: list[Element]) -> frozenset[int]:
    """ids of every text node with a ``pre`` ancestor (original tree)."""
    ids: set[int] = set()
    for element in elements:
        if element.tag != "pre":
            continue
        stack = list(element.children)
        while stack:
            node = stack.pop()
            if isinstance(node, Text):
                ids.add(id(node))
            else:
                stack.extend(node.children)
    return frozenset(ids)


def _hoist_block_children(node: Element) -> None:
    """Move block-level children after ``node`` in its parent.

    Same effect as the legacy hoist, with one partition of the child
    list and one slice-insert into the parent instead of per-child
    ``detach()``/``insert_child()`` scans (headings are block-level, so
    the legacy ``is_block or is_heading`` test is one set probe).
    """
    parent = node.parent
    if parent is None:
        return
    misplaced: list[Node] = []
    kept: list[Node] = []
    for child in node.children:
        if isinstance(child, Element) and child.tag in BLOCK_TAGS:
            misplaced.append(child)
        else:
            kept.append(child)
    if not misplaced:
        return
    node.children = kept
    insert_at = node.index_in_parent() + 1
    parent.children[insert_at:insert_at] = misplaced
    for child in misplaced:
        child.parent = parent


def _wrap_orphans_at(node: Element) -> None:
    """Apply the four orphan-wrapping rules at one node.

    One scan of the child list decides which rules can match at all;
    most nodes have no orphan children and pay only that scan.
    """
    needs = 0
    for child in node.children:
        if isinstance(child, Element):
            tag = child.tag
            if tag == "li":
                needs |= 1
            elif tag == "tr":
                needs |= 4
            elif tag in _DL_ITEMS:
                needs |= 2
            elif tag in _TABLE_CELLS:
                needs |= 8
    if not needs:
        return
    # Rule order matches _wrap_orphans; each rule sees the child list
    # the previous one left (a fresh ``tr`` wrapper from rule 4 is not
    # re-examined by rule 3, exactly like the legacy snapshot).
    tag = node.tag
    if needs & 1 and tag not in LIST_CONTAINER_TAGS:
        _wrap_runs_fast(node, _LI_TAGS, "ul")
    if needs & 2 and tag not in LIST_CONTAINER_TAGS:
        _wrap_runs_fast(node, _DL_ITEMS, "dl")
    if needs & 4 and tag not in _TABLE_SECTION_TAGS:
        _wrap_runs_fast(node, _TR_TAGS, "table")
    if needs & 8 and tag not in _TR_TAGS:
        _wrap_runs_fast(node, _TABLE_CELLS, "tr")


def _wrap_runs_fast(parent: Element, tags: frozenset[str], wrapper_tag: str) -> None:
    """One-rebuild form of :func:`_wrap_runs`.

    The legacy loop inserts the wrapper then ``append_child``s each run
    item -- every append rescans the parent's shrinking child list.
    Here the new child list is built in a single pass: a run's items
    move under the wrapper, and the whitespace text nodes interleaved
    with the run land immediately after it, which is exactly where the
    legacy splice leaves them.
    """
    children = parent.children
    out: list[Node] = []
    i = 0
    n = len(children)
    while i < n:
        child = children[i]
        if isinstance(child, Element) and child.tag in tags:
            run = [child]
            gap: list[Node] = []
            i += 1
            while i < n:
                nxt = children[i]
                if isinstance(nxt, Element) and nxt.tag in tags:
                    run.append(nxt)
                    i += 1
                elif isinstance(nxt, Text) and not nxt.text.strip():
                    gap.append(nxt)
                    i += 1
                else:
                    break
            wrapper = Element(wrapper_tag)
            wrapper.parent = parent
            wrapper.children = run
            for item in run:
                item.parent = wrapper
            out.append(wrapper)
            out.extend(gap)
        else:
            out.append(child)
            i += 1
    parent.children = out

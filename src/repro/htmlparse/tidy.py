"""An HTML cleanser in the spirit of HTML Tidy.

Section 2.4 observes that although the restructuring heuristics tolerate
ill-formed HTML, "applying HTML cleansing tools (such as HTML Tidy) can
improve the accuracy of resulting XML documents."  This module provides
the cleansing pass for that ablation (experiment E6): it operates on an
already-parsed tree and repairs the malformations our noise injector (and
the era's hand-written HTML) produce.

Fix-ups applied, in order:

1. *Heading/inline nesting repair* -- block-level children of a heading
   or of an inline element (the fallout of a dropped ``</h2>`` or an
   unclosed ``<font>``) are moved out to become following siblings.
2. *Orphan list items* -- runs of ``li`` outside a list container are
   wrapped in a ``ul``; orphan ``dt``/``dd`` runs are wrapped in a ``dl``.
3. *Orphan table parts* -- runs of ``tr`` outside a table are wrapped in a
   ``table``; ``td``/``th`` outside a row are wrapped in a ``tr``.
4. *Empty inline removal* -- inline elements with no content are deleted.
5. *Redundant inline collapse* -- ``<b><b>x</b></b>`` becomes ``<b>x</b>``.
6. *Whitespace normalization* -- runs of whitespace in text nodes collapse
   to a single space (outside ``pre``).
"""

from __future__ import annotations

import re

from repro.dom.node import Element, Node, Text
from repro.dom.treeops import iter_postorder
from repro.htmlparse.taginfo import (
    LIST_CONTAINER_TAGS,
    LIST_ITEM_TAGS,
    is_block,
    is_heading,
    is_inline,
)

_WS_RE = re.compile(r"\s+")


def tidy(root: Element) -> Element:
    """Cleanse a parsed HTML tree in place and return it."""
    _repair_heading_nesting(root)
    _repair_inline_block_nesting(root)
    _wrap_orphans(root)
    _drop_empty_inlines(root)
    _collapse_redundant_inlines(root)
    _normalize_whitespace(root)
    return root


# ---------------------------------------------------------------------------
# 1. heading nesting


def _repair_heading_nesting(root: Element) -> None:
    for node in list(iter_postorder(root)):
        if not isinstance(node, Element) or not is_heading(node.tag):
            continue
        if node.parent is None:
            continue
        misplaced = [
            child
            for child in node.element_children()
            if is_block(child.tag) or is_heading(child.tag)
        ]
        parent = node.parent
        insert_at = node.index_in_parent() + 1
        for child in misplaced:
            child.detach()
            parent.insert_child(insert_at, child)
            insert_at += 1


def _repair_inline_block_nesting(root: Element) -> None:
    """Move block-level children out of inline elements.

    An unclosed ``<font>`` or ``<b>`` swallows the block elements that
    follow it; HTML Tidy hoists them back out, restoring the sibling
    structure the grouping rule depends on.
    """
    for node in list(iter_postorder(root)):
        if not isinstance(node, Element) or not is_inline(node.tag):
            continue
        if node.parent is None:
            continue
        misplaced = [
            child
            for child in node.element_children()
            if is_block(child.tag) or is_heading(child.tag)
        ]
        parent = node.parent
        insert_at = node.index_in_parent() + 1
        for child in misplaced:
            child.detach()
            parent.insert_child(insert_at, child)
            insert_at += 1


# ---------------------------------------------------------------------------
# 2. orphan wrapping

_DL_ITEMS = frozenset({"dt", "dd"})
_TABLE_CELLS = frozenset({"td", "th"})


def _wrap_orphans(root: Element) -> None:
    for node in list(iter_postorder(root)):
        if not isinstance(node, Element):
            continue
        _wrap_runs(node, lambda el: el.tag in {"li"}, "ul", forbidden_parents=LIST_CONTAINER_TAGS)
        _wrap_runs(node, lambda el: el.tag in _DL_ITEMS, "dl", forbidden_parents=LIST_CONTAINER_TAGS)
        _wrap_runs(node, lambda el: el.tag == "tr", "table", forbidden_parents=frozenset({"table", "thead", "tbody", "tfoot"}))
        _wrap_runs(node, lambda el: el.tag in _TABLE_CELLS, "tr", forbidden_parents=frozenset({"tr"}))


def _wrap_runs(parent, predicate, wrapper_tag: str, *, forbidden_parents: frozenset[str]) -> None:
    """Wrap maximal runs of matching children under a new wrapper element."""
    if parent.tag in forbidden_parents:
        return
    index = 0
    while index < len(parent.children):
        child = parent.children[index]
        if isinstance(child, Element) and predicate(child):
            run = [child]
            scan = index + 1
            while scan < len(parent.children):
                nxt = parent.children[scan]
                if isinstance(nxt, Element) and predicate(nxt):
                    run.append(nxt)
                    scan += 1
                elif isinstance(nxt, Text) and not nxt.text.strip():
                    scan += 1
                else:
                    break
            wrapper = Element(wrapper_tag)
            parent.insert_child(index, wrapper)
            for item in run:
                wrapper.append_child(item)
        index += 1


# ---------------------------------------------------------------------------
# 4. empty inline removal


def _drop_empty_inlines(root: Element) -> None:
    for node in list(iter_postorder(root)):
        if (
            isinstance(node, Element)
            and node.parent is not None
            and is_inline(node.tag)
            and not node.children
            and not node.get_val()
        ):
            node.detach()


# ---------------------------------------------------------------------------
# 5. redundant inline collapse


def _collapse_redundant_inlines(root: Element) -> None:
    for node in list(iter_postorder(root)):
        if not isinstance(node, Element) or node.parent is None:
            continue
        if not is_inline(node.tag):
            continue
        parent = node.parent
        if isinstance(parent, Element) and parent.tag == node.tag and len(parent.children) == 1:
            # parent is the same inline tag wrapping only this node:
            # splice this node's children into the parent.
            for child in list(node.children):
                parent.append_child(child)
            node.detach()


# ---------------------------------------------------------------------------
# 6. whitespace


def _normalize_whitespace(root: Element) -> None:
    for node in iter_postorder(root):
        if isinstance(node, Text) and not _inside_pre(node):
            node.text = _WS_RE.sub(" ", node.text).strip()
    # Remove text nodes that became empty.
    for node in list(iter_postorder(root)):
        if isinstance(node, Text) and not node.text and node.parent is not None:
            node.detach()


def _inside_pre(node: Node) -> bool:
    return any(ancestor.tag == "pre" for ancestor in node.ancestors())

"""Streaming HTML lexer.

Produces a flat token stream (start tags, end tags, text, comments,
doctype) that :mod:`repro.htmlparse.parser` assembles into a tree.  The
lexer is forgiving in the ways early-2000s HTML demands: unquoted
attribute values, missing value (``<input disabled>``), stray ``<``
characters in text, and unterminated comments at end of input.

Two implementations share the :class:`Token` contract:

* the **fast path** (default) -- bulk scanning with ``str.find`` and
  combined attribute regexes: text runs, comments, raw-text bodies, and
  attribute name/value pairs are each consumed in a single slice or
  regex match instead of per-character cursor stepping, and the source
  is lower-cased at most once per document (the legacy path re-lowered
  the whole source for every raw-text element).
* the **legacy path** (``fast=False``) -- the original per-character
  scanner, kept verbatim as the differential oracle: the property and
  differential suites assert both paths emit identical token streams
  (spans included) on golden, generated, and randomly fuzzed input.

Every token records the half-open source span ``[start, end)`` it was
lexed from.  Spans are bookkeeping, not identity: they are excluded
from token equality so handwritten ``Token(...)`` literals in tests
keep comparing equal.  Concatenating the spans of a token stream
reconstructs the input exactly, except across skipped processing
instructions (``<?...>``), which emit no token.
"""

from __future__ import annotations

import enum
import re
from typing import Iterator, NamedTuple

from repro.htmlparse.entities import decode_entities
from repro.htmlparse.taginfo import RAW_TEXT_TAGS


class TokenType(enum.Enum):
    """Kinds of lexical tokens."""

    START_TAG = "start"
    END_TAG = "end"
    TEXT = "text"
    COMMENT = "comment"
    DOCTYPE = "doctype"


# Shared read-only default for tokens without attributes (text, end
# tags, comments, attribute-less start tags).  Never mutate a token's
# ``attrs`` in place -- tree construction copies it into the element.
_NO_ATTRS: dict[str, str] = {}


class Token(NamedTuple):
    """One lexical token.

    ``data`` holds the tag name (lower-cased) for tags, the text for text
    tokens, and the raw body for comments/doctypes.  ``self_closing`` marks
    XML-style ``<br/>`` syntax on start tags.  ``start``/``end`` delimit
    the source slice the token was lexed from (``-1`` when constructed by
    hand); they do not participate in equality.

    A NamedTuple rather than a dataclass: token construction is the
    per-token floor of the lexer's hot loop, and tuple construction is a
    single C call.
    """

    type: TokenType
    data: str
    attrs: dict[str, str] = _NO_ATTRS
    self_closing: bool = False
    start: int = -1
    end: int = -1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Token):
            return (
                self.type is other.type
                and self.data == other.data
                and self.attrs == other.attrs
                and self.self_closing == other.self_closing
            )
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # Like the dataclass it replaces (eq=True, frozen=False), Token is
    # not hashable.
    __hash__ = None  # type: ignore[assignment]


_TAG_NAME_RE = re.compile(r"[a-zA-Z][a-zA-Z0-9:_-]*")
_ATTR_NAME_RE = re.compile(r"[^\s=/>]+")
_WHITESPACE_RE = re.compile(r"\s+")

# One attribute (or a lone "/") per match, replicating the legacy
# scanner's semantics exactly: names stop at whitespace/=//>, quoted
# values run to the matching quote or EOF (the closing quote optional),
# unquoted values stop only at space/tab/newline/CR/">" -- NOT at other
# regex-\s characters such as \f or \xa0, which the legacy per-char loop
# keeps inside the value.  Groups: 1=slash, 2=name, 3=double-quoted,
# 4=single-quoted, 5=unquoted.
_FAST_ATTR_RE = re.compile(
    r"\s*"
    r"(?:"
    r"(/)"
    r"|([^\s=/>]+)"
    r"(?:\s*=\s*"
    r"(?:\"([^\"]*)\"?"
    r"|'([^']*)'?"
    r"|([^ \t\n\r>]*)"
    r"))?"
    r")?"
)

# Re-parses the attribute text captured by the master regex's start-tag
# alternative (already known to be easy): name, then optionally =value
# with the same three shapes.  Unquoted values replicate the legacy
# scanner exactly: they terminate only at space/tab/newline/CR/'>', so
# '/', '=', '<', quotes, and exotic whitespace stay inside the value
# ('<a href=http://x/y>' keeps the full URL; '<br x=1/>' puts the slash
# in the value and is NOT self-closing, matching the per-char loop).
# The first character additionally excludes quotes (so an unterminated
# quoted value like '<a x="v>' cannot misparse as unquoted) and every
# regex-\s character: the legacy scanner skips *any* unicode whitespace
# after '=' before reading the value, so a value starting with \f or
# \xa0 ('<a x=\f>') must fall to the hard lane rather than keep the
# whitespace the per-char loop would have skipped.
_EASY_ATTR_RE = re.compile(
    r"([^\s=/>]+)"
    r"(?:=(?:\"([^\"]*)\"|'([^']*)'|([^\s>\"'][^ \t\n\r>]*)))?"
)

# The master lexing regex: one C-level match consumes a text run plus
# the following markup construct -- up to two tokens per match, halving
# the Python loop iterations.  Markup alternatives in legacy-dispatch
# order -- easy start tag, end tag, comment, CDATA, doctype, processing
# instruction, or bare end-of-input after trailing text.  ``\Z`` (not
# ``$``, which also matches before a trailing newline) marks the
# run-to-EOF forms of unterminated constructs.  Group layout:
#   1 = text run (always participates, possibly empty)
#   2/3/4 = start-tag name/attr text/slash      5 = end-tag name
#   6 = comment body   7 = CDATA body   8 = doctype body
#   (no group: processing instruction)
# Dispatch is on ``m.lastindex``: 4 start (groups 3 and 4 always
# participate), 5 end, 6 comment, 7 CDATA, 8 doctype, and 1 for
# text-only matches (trailing text, or a skipped PI).  A start tag with
# hard attributes (stray '=', '=' with spacing around it, unterminated
# quote, missing '>', exotic whitespace such as '\f' or '\xa0'
# *between* attributes -- the legacy scanner skips it there but keeps
# it *inside* unquoted values, hence the ASCII-only separators here)
# fails the whole match, as do stray '<' and '</'; those fall to the
# per-attribute hard lane below, after the pending text run is emitted.
_MASTER_RE = re.compile(
    r"([^<]*)"
    r"(?:"
    r"<([a-zA-Z][a-zA-Z0-9:_-]*)"
    r"((?:[ \t\n\r]+[^\s=/>]+"
    r"(?:=(?:\"[^\"]*\"|'[^']*'|[^\s>\"'][^ \t\n\r>]*))?)*)"
    r"[ \t\n\r]*(/?)>"
    r"|</([a-zA-Z][a-zA-Z0-9:_-]*)[^>]*(?:>|\Z)"
    r"|<!--(.*?)(?:-->|\Z)"
    r"|<!\[CDATA\[(.*?)(?:\]\]>|\Z)"
    r"|<!([^>]*)(?:>|\Z)"
    r"|<\?[^>]*(?:>|\Z)"
    r"|\Z"
    r")",
    re.DOTALL,
)


def tokenize(source: str, *, fast: bool = True) -> Iterator[Token]:
    """Yield tokens for an HTML source string.

    Content of raw-text elements (``script``, ``style``, ...) is emitted
    as a single TEXT token terminated only by the matching end tag.

    ``fast`` selects the bulk-scanning implementation (default); pass
    ``False`` for the legacy per-character scanner, which the
    differential test wall uses as the oracle.
    """
    if fast:
        return iter(_tokenize_fast(source))
    return _tokenize_legacy(source)


# ---------------------------------------------------------------------------
# fast path: bulk scanning


def _tokenize_fast(source: str) -> list[Token]:
    src = source
    n = len(src)
    pos = 0
    tokens: list[Token] = []
    append = tokens.append
    master_match = _MASTER_RE.match
    attr_match = _FAST_ATTR_RE.match
    easy_attr_findall = _EASY_ATTR_RE.findall
    name_match = _TAG_NAME_RE.match
    decode = decode_entities
    # ``tuple.__new__`` bypasses the NamedTuple's generated Python-level
    # ``__new__`` -- token construction is the per-token floor of this
    # loop, and the direct C constructor is ~2x cheaper.
    new_token = tuple.__new__
    token_cls = Token
    lowered: str | None = None  # src.lower(), computed at most once
    TEXT = TokenType.TEXT
    START_TAG = TokenType.START_TAG
    END_TAG = TokenType.END_TAG
    COMMENT = TokenType.COMMENT
    DOCTYPE = TokenType.DOCTYPE
    raw_text_tags = RAW_TEXT_TAGS
    no_attrs = _NO_ATTRS
    while pos < n:
        m = master_match(src, pos)
        if m is not None:
            kind = m.lastindex
            end = m.end()
            text = m[1]
            if text:
                # The text run preceding the markup construct.
                tend = pos + len(text)
                append(
                    new_token(
                        token_cls,
                        (
                            TEXT,
                            decode(text) if "&" in text else text,
                            no_attrs,
                            False,
                            pos,
                            tend,
                        ),
                    )
                )
                pos = tend
            if kind == 1:
                # Text-only match: trailing text at end of input, or a
                # skipped processing instruction (no token).
                pos = end
                continue
            if kind == 4:
                # Easy start tag: name, attr text, self-closing slash.
                name = m[2].lower()
                attr_text = m[3]
                if attr_text:
                    attrs = {}
                    # findall builds the (name, dq, sq, uq) rows in C.
                    # Exactly one value group can be non-empty, so
                    # ``dq or sq or uq`` picks it; a valueless attribute
                    # and an explicitly empty value both yield "" --
                    # which is also what the legacy scanner produces.
                    for attr_name, dq, sq, uq in easy_attr_findall(
                        attr_text
                    ):
                        attr_name = attr_name.lower()
                        if attr_name not in attrs:
                            value = dq or sq or uq
                            attrs[attr_name] = (
                                decode(value) if "&" in value else value
                            )
                else:
                    attrs = no_attrs
                self_closing = m[4] == "/"
                append(
                    new_token(
                        token_cls,
                        (START_TAG, name, attrs, self_closing, pos, end),
                    )
                )
                pos = end
                if self_closing or name not in raw_text_tags:
                    continue
                # Raw-text body: single bulk find over the (lazily
                # computed, cached) lower-cased source.
                if lowered is None:
                    lowered = src.lower()
                stop = lowered.find("</" + name, pos)
                if stop == -1:
                    stop = n
                if stop > pos:
                    append(
                        new_token(
                            token_cls,
                            (TEXT, src[pos:stop], no_attrs, False, pos, stop),
                        )
                    )
                pos = stop
                continue
            if kind == 5:
                append(
                    new_token(
                        token_cls,
                        (END_TAG, m[5].lower(), no_attrs, False, pos, end),
                    )
                )
                pos = end
                continue
            if kind == 6:
                append(
                    new_token(
                        token_cls, (COMMENT, m[6], no_attrs, False, pos, end)
                    )
                )
                pos = end
                continue
            if kind == 7:
                # CDATA content is literal character data (no entity
                # decoding).
                append(
                    new_token(
                        token_cls, (TEXT, m[7], no_attrs, False, pos, end)
                    )
                )
                pos = end
                continue
            if kind == 8:
                append(
                    new_token(
                        token_cls,
                        (DOCTYPE, m[8].strip(), no_attrs, False, pos, end),
                    )
                )
                pos = end
                continue
            # No group matched: processing instruction -- skipped,
            # no token.
            pos = end
            continue
        # The master regex failed: somewhere ahead is a '<' that is a
        # stray '<', a stray '</' (the end-tag alternative only fails on
        # a bad name), or a start tag with hard attributes.  (A '<'
        # must exist -- text followed by end-of-input always matches.)
        # Emit the plain text run before it, then take the hard lane.
        lt = src.find("<", pos)
        if lt > pos:
            text = src[pos:lt]
            append(
                new_token(
                    token_cls,
                    (
                        TEXT,
                        decode(text) if "&" in text else text,
                        no_attrs,
                        False,
                        pos,
                        lt,
                    ),
                )
            )
            pos = lt
        token_start = pos
        if src[pos + 1 : pos + 2] == "/":
            # Stray '</' -- emit as text.
            pos += 2
            append(Token(TEXT, "</", no_attrs, False, token_start, pos))
            continue
        match = name_match(src, pos + 1)
        if not match:
            # Stray '<' in text.
            pos += 1
            append(Token(TEXT, "<", no_attrs, False, token_start, pos))
            continue
        # The hard lane: a tag the master regex refused (stray '=',
        # unterminated quote, entity or '/' inside a value, missing
        # '>', ...).  One combined regex match per attribute, replaying
        # the legacy scanner's decisions exactly.
        name = match.group(0).lower()
        pos = match.end()
        attrs = {}
        self_closing = False
        while True:
            m = attr_match(src, pos)
            attr_name = m.group(2)
            if attr_name is None:
                if m.group(1):
                    pos = m.end()
                    if src[pos : pos + 1] == ">":
                        self_closing = True
                    continue
                # Only whitespace matched: the next char is '>', EOF, or
                # a stray '=' (which the legacy scanner skips one-by-one).
                pos = m.end()
                if pos >= n or src[pos] == ">":
                    break
                pos += 1
                continue
            pos = m.end()
            attr_name = attr_name.lower()
            if attr_name not in attrs:
                value = m.group(3)
                if value is None:
                    value = m.group(4)
                if value is None:
                    value = m.group(5)
                if value is None:
                    value = ""
                attrs[attr_name] = decode(value) if "&" in value else value
        if pos < n and src[pos] == ">":
            pos += 1
        append(Token(START_TAG, name, attrs, self_closing, token_start, pos))
        if name in raw_text_tags and not self_closing:
            if lowered is None:
                lowered = src.lower()
            stop = lowered.find("</" + name, pos)
            if stop == -1:
                stop = n
            if stop > pos:
                append(Token(TEXT, src[pos:stop], no_attrs, False, pos, stop))
            pos = stop
    return tokens


# ---------------------------------------------------------------------------
# legacy path: per-character cursor (the differential oracle)


class _Scanner:
    """Cursor over the source string."""

    __slots__ = ("source", "pos")

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.source)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def startswith(self, prefix: str) -> bool:
        return self.source.startswith(prefix, self.pos)

    def take_until(self, needle: str) -> str:
        """Consume up to (not including) ``needle``; to EOF if absent."""
        index = self.source.find(needle, self.pos)
        if index == -1:
            chunk = self.source[self.pos :]
            self.pos = len(self.source)
            return chunk
        chunk = self.source[self.pos : index]
        self.pos = index
        return chunk

    def skip_whitespace(self) -> None:
        match = _WHITESPACE_RE.match(self.source, self.pos)
        if match:
            self.pos = match.end()


def _scan_attributes(scanner: _Scanner) -> tuple[dict[str, str], bool]:
    """Read attributes up to ``>``; returns (attrs, self_closing)."""
    attrs: dict[str, str] = {}
    self_closing = False
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch == "" or ch == ">":
            break
        if ch == "/":
            scanner.pos += 1
            if scanner.peek() == ">":
                self_closing = True
            continue
        match = _ATTR_NAME_RE.match(scanner.source, scanner.pos)
        if not match:
            scanner.pos += 1
            continue
        name = match.group(0).lower()
        scanner.pos = match.end()
        scanner.skip_whitespace()
        value = ""
        if scanner.peek() == "=":
            scanner.pos += 1
            scanner.skip_whitespace()
            quote = scanner.peek()
            if quote in ("'", '"'):
                scanner.pos += 1
                value = scanner.take_until(quote)
                if not scanner.eof():
                    scanner.pos += 1
            else:
                start = scanner.pos
                while not scanner.eof() and scanner.peek() not in (" ", "\t", "\n", "\r", ">"):
                    scanner.pos += 1
                value = scanner.source[start : scanner.pos]
        if name not in attrs:
            attrs[name] = decode_entities(value)
    return attrs, self_closing


def _tokenize_legacy(source: str) -> Iterator[Token]:
    scanner = _Scanner(source)
    raw_text_tag: str | None = None
    while not scanner.eof():
        token_start = scanner.pos
        if raw_text_tag is not None:
            close = f"</{raw_text_tag}"
            index = scanner.source.lower().find(close, scanner.pos)
            if index == -1:
                text = scanner.source[scanner.pos :]
                scanner.pos = len(scanner.source)
            else:
                text = scanner.source[scanner.pos : index]
                scanner.pos = index
            if text:
                yield Token(
                    TokenType.TEXT, text, start=token_start, end=scanner.pos
                )
            raw_text_tag = None
            continue
        if scanner.peek() != "<":
            text = scanner.take_until("<")
            yield Token(
                TokenType.TEXT,
                decode_entities(text),
                start=token_start,
                end=scanner.pos,
            )
            continue
        # At a '<'.
        if scanner.startswith("<!--"):
            scanner.pos += 4
            body = scanner.take_until("-->")
            if not scanner.eof():
                scanner.pos += 3
            yield Token(
                TokenType.COMMENT, body, start=token_start, end=scanner.pos
            )
            continue
        if scanner.startswith("<![CDATA["):
            scanner.pos += 9
            body = scanner.take_until("]]>")
            if not scanner.eof():
                scanner.pos += 3
            # CDATA content is literal character data (no entity decoding).
            yield Token(
                TokenType.TEXT, body, start=token_start, end=scanner.pos
            )
            continue
        if scanner.startswith("<!"):
            scanner.pos += 2
            body = scanner.take_until(">")
            if not scanner.eof():
                scanner.pos += 1
            yield Token(
                TokenType.DOCTYPE,
                body.strip(),
                start=token_start,
                end=scanner.pos,
            )
            continue
        if scanner.startswith("<?"):
            scanner.pos += 2
            scanner.take_until(">")
            if not scanner.eof():
                scanner.pos += 1
            continue
        if scanner.startswith("</"):
            match = _TAG_NAME_RE.match(scanner.source, scanner.pos + 2)
            if not match:
                # Stray '</' -- emit as text.
                scanner.pos += 2
                yield Token(
                    TokenType.TEXT, "</", start=token_start, end=scanner.pos
                )
                continue
            name = match.group(0).lower()
            scanner.pos = match.end()
            scanner.take_until(">")
            if not scanner.eof():
                scanner.pos += 1
            yield Token(
                TokenType.END_TAG, name, start=token_start, end=scanner.pos
            )
            continue
        match = _TAG_NAME_RE.match(scanner.source, scanner.pos + 1)
        if not match:
            # Stray '<' in text.
            scanner.pos += 1
            yield Token(
                TokenType.TEXT, "<", start=token_start, end=scanner.pos
            )
            continue
        name = match.group(0).lower()
        scanner.pos = match.end()
        attrs, self_closing = _scan_attributes(scanner)
        if scanner.peek() == ">":
            scanner.pos += 1
        yield Token(
            TokenType.START_TAG,
            name,
            attrs,
            self_closing,
            start=token_start,
            end=scanner.pos,
        )
        if name in RAW_TEXT_TAGS and not self_closing:
            raw_text_tag = name

"""Streaming HTML lexer.

Produces a flat token stream (start tags, end tags, text, comments,
doctype) that :mod:`repro.htmlparse.parser` assembles into a tree.  The
lexer is forgiving in the ways early-2000s HTML demands: unquoted
attribute values, missing value (``<input disabled>``), stray ``<``
characters in text, and unterminated comments at end of input.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.htmlparse.entities import decode_entities
from repro.htmlparse.taginfo import RAW_TEXT_TAGS


class TokenType(enum.Enum):
    """Kinds of lexical tokens."""

    START_TAG = "start"
    END_TAG = "end"
    TEXT = "text"
    COMMENT = "comment"
    DOCTYPE = "doctype"


@dataclass
class Token:
    """One lexical token.

    ``data`` holds the tag name (lower-cased) for tags, the text for text
    tokens, and the raw body for comments/doctypes.  ``self_closing`` marks
    XML-style ``<br/>`` syntax on start tags.
    """

    type: TokenType
    data: str
    attrs: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


_TAG_NAME_RE = re.compile(r"[a-zA-Z][a-zA-Z0-9:_-]*")
_ATTR_NAME_RE = re.compile(r"[^\s=/>]+")
_WHITESPACE_RE = re.compile(r"\s+")


class _Scanner:
    """Cursor over the source string."""

    __slots__ = ("source", "pos")

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.source)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def startswith(self, prefix: str) -> bool:
        return self.source.startswith(prefix, self.pos)

    def take_until(self, needle: str) -> str:
        """Consume up to (not including) ``needle``; to EOF if absent."""
        index = self.source.find(needle, self.pos)
        if index == -1:
            chunk = self.source[self.pos :]
            self.pos = len(self.source)
            return chunk
        chunk = self.source[self.pos : index]
        self.pos = index
        return chunk

    def skip_whitespace(self) -> None:
        match = _WHITESPACE_RE.match(self.source, self.pos)
        if match:
            self.pos = match.end()


def _scan_attributes(scanner: _Scanner) -> tuple[dict[str, str], bool]:
    """Read attributes up to ``>``; returns (attrs, self_closing)."""
    attrs: dict[str, str] = {}
    self_closing = False
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch == "" or ch == ">":
            break
        if ch == "/":
            scanner.pos += 1
            if scanner.peek() == ">":
                self_closing = True
            continue
        match = _ATTR_NAME_RE.match(scanner.source, scanner.pos)
        if not match:
            scanner.pos += 1
            continue
        name = match.group(0).lower()
        scanner.pos = match.end()
        scanner.skip_whitespace()
        value = ""
        if scanner.peek() == "=":
            scanner.pos += 1
            scanner.skip_whitespace()
            quote = scanner.peek()
            if quote in ("'", '"'):
                scanner.pos += 1
                value = scanner.take_until(quote)
                if not scanner.eof():
                    scanner.pos += 1
            else:
                start = scanner.pos
                while not scanner.eof() and scanner.peek() not in (" ", "\t", "\n", "\r", ">"):
                    scanner.pos += 1
                value = scanner.source[start : scanner.pos]
        if name not in attrs:
            attrs[name] = decode_entities(value)
    return attrs, self_closing


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens for an HTML source string.

    Content of raw-text elements (``script``, ``style``, ...) is emitted
    as a single TEXT token terminated only by the matching end tag.
    """
    scanner = _Scanner(source)
    raw_text_tag: str | None = None
    while not scanner.eof():
        if raw_text_tag is not None:
            close = f"</{raw_text_tag}"
            index = scanner.source.lower().find(close, scanner.pos)
            if index == -1:
                text = scanner.source[scanner.pos :]
                scanner.pos = len(scanner.source)
            else:
                text = scanner.source[scanner.pos : index]
                scanner.pos = index
            if text:
                yield Token(TokenType.TEXT, text)
            raw_text_tag = None
            continue
        if scanner.peek() != "<":
            text = scanner.take_until("<")
            yield Token(TokenType.TEXT, decode_entities(text))
            continue
        # At a '<'.
        if scanner.startswith("<!--"):
            scanner.pos += 4
            body = scanner.take_until("-->")
            if not scanner.eof():
                scanner.pos += 3
            yield Token(TokenType.COMMENT, body)
            continue
        if scanner.startswith("<![CDATA["):
            scanner.pos += 9
            body = scanner.take_until("]]>")
            if not scanner.eof():
                scanner.pos += 3
            # CDATA content is literal character data (no entity decoding).
            yield Token(TokenType.TEXT, body)
            continue
        if scanner.startswith("<!"):
            scanner.pos += 2
            body = scanner.take_until(">")
            if not scanner.eof():
                scanner.pos += 1
            yield Token(TokenType.DOCTYPE, body.strip())
            continue
        if scanner.startswith("<?"):
            scanner.pos += 2
            scanner.take_until(">")
            if not scanner.eof():
                scanner.pos += 1
            continue
        if scanner.startswith("</"):
            match = _TAG_NAME_RE.match(scanner.source, scanner.pos + 2)
            if not match:
                # Stray '</' -- emit as text.
                yield Token(TokenType.TEXT, "</")
                scanner.pos += 2
                continue
            name = match.group(0).lower()
            scanner.pos = match.end()
            scanner.take_until(">")
            if not scanner.eof():
                scanner.pos += 1
            yield Token(TokenType.END_TAG, name)
            continue
        match = _TAG_NAME_RE.match(scanner.source, scanner.pos + 1)
        if not match:
            # Stray '<' in text.
            yield Token(TokenType.TEXT, "<")
            scanner.pos += 1
            continue
        name = match.group(0).lower()
        scanner.pos = match.end()
        attrs, self_closing = _scan_attributes(scanner)
        if scanner.peek() == ">":
            scanner.pos += 1
        yield Token(TokenType.START_TAG, name, attrs, self_closing)
        if name in RAW_TEXT_TAGS and not self_closing:
            raw_text_tag = name

"""HTML character-reference decoding.

Supports the named entities that occur in real-world resume pages plus
decimal/hexadecimal numeric references.  Unknown references are left
verbatim, which is what browsers of the paper's era did.
"""

from __future__ import annotations

import re

NAMED_ENTITIES: dict[str, str] = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "copy": "©",
    "reg": "®",
    "trade": "™",
    "deg": "°",
    "plusmn": "±",
    "middot": "·",
    "laquo": "«",
    "raquo": "»",
    "ldquo": "“",
    "rdquo": "”",
    "lsquo": "‘",
    "rsquo": "’",
    "ndash": "–",
    "mdash": "—",
    "hellip": "…",
    "bull": "•",
    "sect": "§",
    "para": "¶",
    "frac12": "½",
    "frac14": "¼",
    "times": "×",
    "divide": "÷",
    "eacute": "é",
    "egrave": "è",
    "agrave": "à",
    "uuml": "ü",
    "ouml": "ö",
    "auml": "ä",
    "szlig": "ß",
    "ccedil": "ç",
    "ntilde": "ñ",
    "pound": "£",
    "yen": "¥",
    "euro": "€",
    "cent": "¢",
}

_ENTITY_RE = re.compile(
    r"&(#[xX]?[0-9a-fA-F]+|[a-zA-Z][a-zA-Z0-9]*);?", re.ASCII
)


def _decode_one(match: re.Match[str]) -> str:
    body = match.group(1)
    if body.startswith("#"):
        try:
            if body[1:2] in ("x", "X"):
                code = int(body[2:], 16)
            else:
                code = int(body[1:], 10)
        except ValueError:
            return match.group(0)
        if 0 < code <= 0x10FFFF:
            try:
                return chr(code)
            except ValueError:
                return match.group(0)
        return match.group(0)
    replacement = NAMED_ENTITIES.get(body)
    if replacement is None:
        replacement = NAMED_ENTITIES.get(body.lower())
    if replacement is None:
        return match.group(0)
    return replacement


def decode_entities(text: str) -> str:
    """Replace character references in ``text`` with their characters."""
    if "&" not in text:
        return text
    return _ENTITY_RE.sub(_decode_one, text)

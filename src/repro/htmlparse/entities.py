"""HTML character-reference decoding.

Supports the named entities that occur in real-world resume pages plus
decimal/hexadecimal numeric references.  Unknown references are left
verbatim, which is what browsers of the paper's era did.

Two decoders share the same semantics:

* :func:`decode_entities` (the production path) splits the text on
  reference-shaped lexemes in one C-level pass and resolves each lexeme
  through a flat table built at import and warmed as new lexemes are
  seen, so repeated references (``&amp;`` in URLs, unknown ``&page=``
  query fragments, ...) cost one dict probe instead of a regex-callback
  invocation.
* :func:`_decode_entities_slow` is the original ``re.sub``-with-callback
  implementation, kept as the reference oracle; the unit suite asserts
  both decoders agree, including on truncated references.

Truncation semantics at end of input (no terminating ``;``): a numeric
reference with at least one digit decodes (``&#65`` -> ``A``,
``&#x41`` -> ``A``), while a bare ``&#`` or ``&#x`` is not
reference-shaped and stays verbatim.  Decimal bodies that contain hex
letters (``&#6f``) fail ``int(..., 10)`` and stay verbatim too.
"""

from __future__ import annotations

import re

NAMED_ENTITIES: dict[str, str] = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "copy": "©",
    "reg": "®",
    "trade": "™",
    "deg": "°",
    "plusmn": "±",
    "middot": "·",
    "laquo": "«",
    "raquo": "»",
    "ldquo": "“",
    "rdquo": "”",
    "lsquo": "‘",
    "rsquo": "’",
    "ndash": "–",
    "mdash": "—",
    "hellip": "…",
    "bull": "•",
    "sect": "§",
    "para": "¶",
    "frac12": "½",
    "frac14": "¼",
    "times": "×",
    "divide": "÷",
    "eacute": "é",
    "egrave": "è",
    "agrave": "à",
    "uuml": "ü",
    "ouml": "ö",
    "auml": "ä",
    "szlig": "ß",
    "ccedil": "ç",
    "ntilde": "ñ",
    "pound": "£",
    "yen": "¥",
    "euro": "€",
    "cent": "¢",
}

_ENTITY_RE = re.compile(
    r"&(#[xX]?[0-9a-fA-F]+|[a-zA-Z][a-zA-Z0-9]*);?", re.ASCII
)

# Same pattern with the whole lexeme captured too, for the split-based
# fast decoder: split() then yields [literal, lexeme, body, literal,
# lexeme, body, ..., literal].
_ENTITY_SPLIT_RE = re.compile(
    r"(&(#[xX]?[0-9a-fA-F]+|[a-zA-Z][a-zA-Z0-9]*);?)", re.ASCII
)


def _decode_one(match: re.Match[str]) -> str:
    body = match.group(1)
    if body.startswith("#"):
        try:
            if body[1:2] in ("x", "X"):
                code = int(body[2:], 16)
            else:
                code = int(body[1:], 10)
        except ValueError:
            return match.group(0)
        if 0 < code <= 0x10FFFF:
            try:
                return chr(code)
            except ValueError:
                return match.group(0)
        return match.group(0)
    replacement = NAMED_ENTITIES.get(body)
    if replacement is None:
        replacement = NAMED_ENTITIES.get(body.lower())
    if replacement is None:
        return match.group(0)
    return replacement


def _decode_lexeme(lexeme: str, body: str) -> str:
    """Resolve one reference lexeme (``&amp;``, ``&#65``, ...)."""
    if body[0] == "#":
        try:
            if body[1:2] in ("x", "X"):
                code = int(body[2:], 16)
            else:
                code = int(body[1:], 10)
        except ValueError:
            return lexeme
        if 0 < code <= 0x10FFFF:
            try:
                return chr(code)
            except ValueError:
                return lexeme
        return lexeme
    replacement = NAMED_ENTITIES.get(body)
    if replacement is None:
        replacement = NAMED_ENTITIES.get(body.lower())
    if replacement is None:
        return lexeme
    return replacement


# Flat lexeme -> replacement table, seeded at import with both the
# terminated and unterminated spelling of every known named entity and
# warmed at runtime with whatever else the corpus contains (case
# variants, numeric references, unknown names kept verbatim).  Resolving
# a reference is pure -- the replacement depends only on the lexeme --
# so memoisation cannot change observable behaviour.  _CACHE_LIMIT
# bounds growth on adversarial input (e.g. millions of distinct numeric
# references).
_DECODE_CACHE: dict[str, str] = {}
for _name, _repl in NAMED_ENTITIES.items():
    _DECODE_CACHE[f"&{_name};"] = _repl
    _DECODE_CACHE[f"&{_name}"] = _repl
del _name, _repl
_CACHE_LIMIT = 10000


def decode_entities(text: str) -> str:
    """Replace character references in ``text`` with their characters."""
    if "&" not in text:
        return text
    pieces = _ENTITY_SPLIT_RE.split(text)
    count = len(pieces)
    if count == 1:
        # '&' present but nothing reference-shaped.
        return text
    cache = _DECODE_CACHE
    out = [pieces[0]]
    append = out.append
    i = 1
    while i < count:
        lexeme = pieces[i]
        replacement = cache.get(lexeme)
        if replacement is None:
            replacement = _decode_lexeme(lexeme, pieces[i + 1])
            if len(cache) < _CACHE_LIMIT:
                cache[lexeme] = replacement
        append(replacement)
        append(pieces[i + 2])
        i += 3
    return "".join(out)


def _decode_entities_slow(text: str) -> str:
    """The original sub-with-callback decoder, kept as the oracle."""
    if "&" not in text:
        return text
    return _ENTITY_RE.sub(_decode_one, text)

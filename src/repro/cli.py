"""Command-line interface.

Subcommands mirror the pipeline stages::

    repro-web gen-corpus   --count 50 --out corpus/          # synthesize HTML
    repro-web html2xml     corpus/*.html --out xml/          # convert (serial)
    repro-web convert-corpus corpus/*.html --out xml/ \\
              --max-workers 4 --discover \\
              --trace-out trace.jsonl --metrics-out m.prom   # parallel engine
    repro-web discover     xml/*.xml --sup 0.4               # schema + DTD
    repro-web stats        metrics.json                      # re-render metrics
    repro-web report       runs.jsonl                        # render a run record
    repro-web runs         runs.jsonl --check                # ledger + regressions
    repro-web validate-obs --trace trace.jsonl --metrics m.prom
    repro-web evaluate     --docs 50                         # Figure 4 numbers
    repro-web crawl        --resumes 30 --noise 100          # simulated crawl
    repro-web evolve init state/                             # online evolution
    repro-web evolve fold state/ --generate 40 --repository repo/
    repro-web evolve status state/
    repro-web evolve rollback --repository repo/

(Converted XML is re-loaded with the HTML parser, which accepts the XML
subset the converter emits.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.concepts.resume_kb import build_resume_knowledge_base
from repro.convert.pipeline import DocumentConverter
from repro.corpus.crawler import TopicCrawler
from repro.corpus.generator import ResumeCorpusGenerator
from repro.corpus.web import SimulatedWeb
from repro.dom.serialize import to_xml_document
from repro.evaluation.accuracy import evaluate_accuracy
from repro.evaluation.report import format_histogram, format_table
from repro.htmlparse.parser import parse_fragment
from repro.obs import (
    MetricsRegistry,
    ProgressReporter,
    ProvenanceLog,
    RunLedger,
    Tracer,
    build_run_record,
    config_fingerprint,
    load_metrics,
    write_chrome_trace,
    write_metrics,
    write_trace_jsonl,
)
from repro.schema.dtd import derive_dtd
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema
from repro.schema.paths import extract_paths


def _style_weights(styles: list[str] | None) -> dict[str, float] | None:
    """Turn repeated ``--style`` flags into generator style weights.

    Selected styles get weight 1, every other known style gets an
    explicit 0 (the generator defaults unlisted styles to 1, so merely
    listing the chosen ones would not exclude the rest).
    """
    if not styles:
        return None
    from repro.corpus.styles import STYLES

    unknown = sorted(set(styles) - set(STYLES))
    if unknown:
        raise SystemExit(
            f"unknown style(s): {', '.join(unknown)} "
            f"(available: {', '.join(sorted(STYLES))})"
        )
    return {name: (1.0 if name in styles else 0.0) for name in STYLES}


def _cmd_gen_corpus(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    generator = ResumeCorpusGenerator(
        seed=args.seed, style_weights=_style_weights(args.style)
    )
    for doc in generator.generate(args.count):
        (out / f"resume{doc.doc_id:04d}.html").write_text(doc.html, encoding="utf-8")
    print(f"wrote {args.count} resumes to {out}/")
    return 0


def _conversion_config(args: argparse.Namespace) -> "ConversionConfig":
    from repro.convert.config import ConversionConfig

    return ConversionConfig(
        fast_tagger=not args.no_fast_tagger,
        fast_parser=not getattr(args, "no_fast_parser", False),
        fast_tidy=not getattr(args, "no_fast_tidy", False),
        chaos_fail_marker=getattr(args, "chaos_fail_marker", "") or None,
        chaos_kill_marker=getattr(args, "chaos_kill_marker", "") or None,
    )


def _cmd_html2xml(args: argparse.Namespace) -> int:
    from repro.runtime.stats import RULE_SECONDS, rule_rows_from_registry

    converter = DocumentConverter(
        build_resume_knowledge_base(), _conversion_config(args)
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    # Same per-rule timing registry the parallel engine reports, so the
    # serial path answers "where does the time go" with the same table.
    registry = MetricsRegistry()
    for name in args.files:
        source = Path(name)
        result = converter.convert(source.read_text(encoding="utf-8"))
        target = out / (source.stem + ".xml")
        target.write_text(result.to_xml(), encoding="utf-8")
        for rule, seconds in result.rule_seconds.items():
            registry.counter(RULE_SECONDS, rule=rule).inc(seconds)
        print(
            f"{source.name}: {result.concept_node_count} concept nodes, "
            f"{result.instance_stats.unidentified_ratio:.0%} unidentified"
        )
    rows = rule_rows_from_registry(registry)
    if rows:
        print()
        print(format_table(["rule", "seconds", "share"], rows,
                           title="Per-rule time"))
    for target_name in args.metrics_out or []:
        write_metrics(registry, target_name)
        print(f"wrote metrics to {target_name}")
    return 0


def _cmd_convert_corpus(args: argparse.Namespace) -> int:
    from repro.runtime.engine import CorpusEngine, EngineConfig

    if args.files:
        sources = [Path(name).read_text(encoding="utf-8") for name in args.files]
    elif args.generate:
        sources = ResumeCorpusGenerator(
            seed=args.seed, style_weights=_style_weights(args.style)
        ).generate_html(args.generate)
    else:
        print("convert-corpus needs input files or --generate N", file=sys.stderr)
        return 2
    kb = build_resume_knowledge_base()
    engine = CorpusEngine(
        kb,
        _conversion_config(args),
        engine_config=EngineConfig(
            max_workers=args.max_workers or None,
            chunk_size=args.chunk_size or None,
            error_policy=args.on_error,
            quarantine_dir=args.quarantine_dir,
        ),
    )
    tracing = bool(args.trace_out or args.trace_chrome)
    tracer = Tracer() if tracing else None
    provenance = ProvenanceLog() if tracing else None
    # --progress forces the live line on (CI logs), --quiet forces it
    # off; by default it follows whether stderr is a terminal.
    progress_enabled = True if args.progress else (False if args.quiet else None)
    reporter = ProgressReporter(total=len(sources), enabled=progress_enabled)
    # XML never rides the chunk pickles home: with --out the workers
    # write survivor files directly (named by original corpus position,
    # so failures leave holes, not shifted names); without it nobody
    # needs the serialized documents at all.
    if args.files:
        names = [Path(name).stem for name in args.files]
    else:
        names = [f"doc{position:04d}" for position in range(len(sources))]
    # The finally terminates the in-place progress line even when the
    # run raises (Ctrl-C, fail-fast error): without it, the next stderr
    # write would land mid-line in non-TTY captures.
    try:
        run = engine.run(sources, sup_threshold=args.sup, ratio_threshold=args.ratio,
                         discover=args.discover, tracer=tracer, provenance=provenance,
                         progress=reporter, collect_xml=False,
                         xml_sink=args.out or None, names=names)
        result = run.corpus
        reporter.finish(result.stats)
    finally:
        reporter.finish()
    if tracer is not None and args.trace_out:
        lines = write_trace_jsonl(args.trace_out, tracer, provenance)
        print(f"wrote {lines} trace records to {args.trace_out}")
    if tracer is not None and args.trace_chrome:
        spans = list(tracer.iter_dicts())
        write_chrome_trace(args.trace_chrome, spans)
        print(f"wrote Chrome trace ({len(spans)} spans) to {args.trace_chrome}")
    for target_name in args.metrics_out or []:
        write_metrics(result.stats.registry, target_name)
        print(f"wrote metrics to {target_name}")
    if args.out:
        print(f"wrote {result.stats.documents} XML documents to {Path(args.out)}/")
    if result.failures:
        rows = [
            [failure.doc_id, failure.stage, failure.error_type,
             failure.message[:60]]
            for failure in result.failures
        ]
        print(format_table(["document", "stage", "error", "message"], rows,
                           title=f"Failed documents ({len(rows)})"))
        if args.on_error == "quarantine":
            print(f"quarantined sources + error JSONs in {args.quarantine_dir}/")
        print()
    stats = result.stats
    print(format_table(["engine", "value"], stats.summary_rows(),
                       title="Corpus engine run"))
    if stats.rule_seconds:
        print()
        print(format_table(["rule", "seconds", "share"], stats.rule_rows(),
                           title="Per-rule time (summed over workers)"))
    quantile_rows = stats.stage_quantile_rows()
    if quantile_rows:
        print()
        print(format_table(
            ["stage", "count", "p50 ms", "p95 ms", "p99 ms"], quantile_rows,
            title="Per-stage latency quantiles",
        ))
    slowest = stats.slowest_rows()
    if slowest:
        print()
        print(format_table(
            ["document", "ms", "label paths", "input nodes"], slowest,
            title=f"Slowest documents (top {len(slowest)})",
        ))
    if args.runlog:
        ledger = RunLedger(args.runlog)
        record = ledger.append(
            build_run_record(
                stats,
                fingerprint=config_fingerprint(
                    engine.config, engine.engine_config
                ),
                topic="resume",
                corpus_size=len(sources),
            )
        )
        print(f"appended run {record['run_id']} to {args.runlog}")
    if args.checkpoint_dir:
        from repro.schema.evolution import AccumulatorCheckpoint

        checkpoint = AccumulatorCheckpoint(args.checkpoint_dir)
        sequence = checkpoint.append_delta(result.accumulator)
        compacted = checkpoint.maybe_compact()
        info = checkpoint.info()
        print(
            f"checkpointed delta #{sequence} to {args.checkpoint_dir}/ "
            f"({info.document_count} documents accumulated"
            + (", log compacted)" if compacted else ")")
        )
    if args.fold_into:
        from repro.schema.evolution import EvolvingSchema

        evolving = EvolvingSchema(args.fold_into, kb)
        outcome = evolving.fold(result.accumulator)
        print(f"fold into {args.fold_into}: {outcome.summary()}")
    if run.discovery is not None:
        print()
        print(run.discovery.schema.describe())
        print()
        print(run.discovery.dtd.render())
    return 0


def _load_xml_roots(files: list[str]) -> list:
    """Parse converted-XML files back into element trees."""
    from repro.mapping.persistence import load_xml_document

    roots = []
    for name in files:
        text = Path(name).read_text(encoding="utf-8")
        if not parse_fragment(text).element_children():
            continue
        roots.append(load_xml_document(text))
    return roots


def _discover_schema(roots, kb, sup: float, ratio: float):
    documents = [extract_paths(root) for root in roots]
    frequent = mine_frequent_paths(
        documents,
        sup_threshold=sup,
        ratio_threshold=ratio,
        constraints=kb.constraints,
        candidate_labels=kb.concept_tags(),
    )
    return MajoritySchema.from_frequent_paths(frequent), documents


def _cmd_discover(args: argparse.Namespace) -> int:
    kb = build_resume_knowledge_base()
    roots = _load_xml_roots(args.files)
    if not roots:
        print("no XML documents parsed", file=sys.stderr)
        return 1
    schema, documents = _discover_schema(roots, kb, args.sup, args.ratio)
    print(schema.describe())
    print()
    dtd = derive_dtd(schema, documents)
    if args.patterns:
        from repro.schema.patterns import (
            discover_all_group_patterns,
            render_dtd_with_patterns,
        )

        parents = [
            node.path for node in schema.root.iter_nodes() if node.children
        ]
        patterns = discover_all_group_patterns(roots, parents)
        print(render_dtd_with_patterns(dtd, patterns))
    else:
        print(dtd.render())
    return 0


def _cmd_integrate(args: argparse.Namespace) -> int:
    from repro.mapping.persistence import save_repository
    from repro.mapping.repository import XMLRepository

    kb = build_resume_knowledge_base()
    roots = _load_xml_roots(args.files)
    if not roots:
        print("no XML documents parsed", file=sys.stderr)
        return 1
    schema, documents = _discover_schema(roots, kb, args.sup, args.ratio)
    dtd = derive_dtd(schema, documents, optional_threshold=args.optional)
    repository = XMLRepository(dtd)
    for root in roots:
        repository.insert(root)
    target = save_repository(repository, args.out)
    print(
        f"integrated {len(repository)} documents into {target}/ "
        f"({repository.stats.repaired} repaired, "
        f"{repository.stats.total_repair_operations} repair operations)"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.mapping.persistence import load_repository

    repository = load_repository(args.store)
    print(f"repository at {args.store}: {len(repository)} documents")
    stats = repository.stats
    print(
        format_table(
            ["documents", "conforming on arrival", "repaired", "repair ops"],
            [[stats.documents, stats.conforming_on_arrival, stats.repaired,
              stats.total_repair_operations]],
        )
    )
    print()
    print(repository.dtd.render())
    if args.query:
        values = repository.values(args.query)
        print(f"\n{len(values)} values for {args.query!r}:")
        for value in values[:20]:
            print(f"  {value}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.runtime.stats import EngineStats

    try:
        registry = load_metrics(args.metrics)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    stats = EngineStats.from_registry(registry)
    print(format_table(["engine", "value"], stats.summary_rows(),
                       title=f"Saved engine metrics ({args.metrics})"))
    if stats.rule_seconds:
        print()
        print(format_table(["rule", "seconds", "share"], stats.rule_rows(),
                           title="Per-rule time (summed over workers)"))
    p50, p95 = stats.chunk_seconds_quantile(0.5), stats.chunk_seconds_quantile(0.95)
    if p95 > 0:
        print()
        print(format_table(
            ["p50 s", "p95 s"], [[f"{p50:.3f}", f"{p95:.3f}"]],
            title="Chunk duration quantiles (histogram estimate)",
        ))
    return 0


def _quantile_rows_from_record(record: dict) -> list[list[str]]:
    from repro.runtime.stats import STAGE_ORDER

    stages = record.get("stage_quantiles") or {}
    ordered = [stage for stage in STAGE_ORDER if stage in stages]
    ordered += sorted(stage for stage in stages if stage not in STAGE_ORDER)
    rows = []
    for stage in ordered:
        summary = stages[stage]
        rows.append([
            stage,
            str(summary.get("count", "")),
            f"{float(summary.get('p50', 0.0)) * 1e3:.2f}",
            f"{float(summary.get('p95', 0.0)) * 1e3:.2f}",
            f"{float(summary.get('p99', 0.0)) * 1e3:.2f}",
        ])
    return rows


def _render_run_record(record: dict) -> None:
    """Print one ledger record as report tables."""
    summary = [
        ["run id", record.get("run_id", "?")],
        ["time", record.get("time_iso", "?")],
        ["topic", record.get("topic", "")],
        ["config", record.get("config_fingerprint", "")],
        ["workers", record.get("workers", "")],
        ["chunk size", record.get("chunk_size", "")],
        ["corpus size", record.get("corpus_size", "")],
        ["documents", record.get("documents", "")],
        ["failed", record.get("documents_failed", "")],
        ["wall seconds", record.get("wall_seconds", "")],
        ["docs/second", record.get("docs_per_second", "")],
        ["pool rebuilds", record.get("pool_rebuilds", "")],
        ["cache hit rate", (record.get("cache") or {}).get("hit_rate", "")],
    ]
    print(format_table(["run", "value"], [[k, str(v)] for k, v in summary],
                       title="Run report"))
    failures = record.get("failures_by_stage") or {}
    if failures:
        print()
        print(format_table(
            ["stage", "failures"],
            [[stage, str(count)] for stage, count in failures.items()],
            title="Failures by stage",
        ))
    quantile_rows = _quantile_rows_from_record(record)
    if quantile_rows:
        print()
        print(format_table(
            ["stage", "count", "p50 ms", "p95 ms", "p99 ms"], quantile_rows,
            title="Per-stage latency quantiles",
        ))
    slowest = record.get("slowest_documents") or []
    if slowest:
        print()
        print(format_table(
            ["document", "ms", "label paths", "input nodes"],
            [
                [
                    str(entry.get("doc", "?")),
                    f"{float(entry.get('seconds', 0.0)) * 1e3:.2f}",
                    str(entry.get("label_paths", "")),
                    str(entry.get("input_nodes", "")),
                ]
                for entry in slowest
            ],
            title=f"Slowest documents (top {len(slowest)})",
        ))


def _cmd_report(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.ledger)
    record = ledger.find(args.run) if args.run else ledger.latest()
    if record is None:
        which = f"run {args.run!r}" if args.run else "any run record"
        print(f"{args.ledger}: no {which} found", file=sys.stderr)
        return 1
    _render_run_record(record)
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import bench_regressions, detect_history_regressions

    # Benchmark mode: diff two benchmark JSON documents.
    if args.bench_current or args.bench_baseline:
        if not (args.bench_current and args.bench_baseline):
            print("runs needs both --bench-current and --bench-baseline",
                  file=sys.stderr)
            return 2
        current = _json.loads(Path(args.bench_current).read_text(encoding="utf-8"))
        baseline = _json.loads(Path(args.bench_baseline).read_text(encoding="utf-8"))
        regressions = bench_regressions(
            current, baseline, threshold=args.threshold
        )
        for regression in regressions:
            print(f"REGRESSION: {regression.message}", file=sys.stderr)
        if regressions:
            print(f"{len(regressions)} benchmark regression(s) beyond "
                  f"{args.threshold:.0%}", file=sys.stderr)
            return 1 if args.check else 0
        print(f"no benchmark regressions beyond {args.threshold:.0%} "
              f"({args.bench_current} vs {args.bench_baseline})")
        return 0

    # Ledger mode: list runs, then diff the latest against its history.
    if not args.ledger:
        print("runs needs a ledger path (or --bench-current/--bench-baseline)",
              file=sys.stderr)
        return 2
    ledger = RunLedger(args.ledger)
    records = ledger.records()
    if not records:
        print(f"{args.ledger}: no run records", file=sys.stderr)
        return 1
    rows = [
        [
            record.get("run_id", "?"),
            record.get("time_iso", "?"),
            str(record.get("workers", "")),
            str(record.get("documents", "")),
            str(record.get("documents_failed", "")),
            str(record.get("docs_per_second", "")),
        ]
        for record in records[-args.limit:]
    ]
    print(format_table(
        ["run id", "time", "workers", "docs", "failed", "docs/s"], rows,
        title=f"Run ledger ({len(records)} records, {args.ledger})",
    ))
    baseline, regressions = detect_history_regressions(
        records, threshold=args.threshold
    )
    print()
    if baseline is None:
        print("no comparable history for the latest run "
              "(need earlier records with the same config and workers)")
        return 0
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression.message}", file=sys.stderr)
        print(f"{len(regressions)} regression(s) vs {baseline['run_id']} "
              f"beyond {args.threshold:.0%}", file=sys.stderr)
        return 1 if args.check else 0
    print(f"latest run within {args.threshold:.0%} of {baseline['run_id']}")
    return 0


def _cmd_validate_obs(args: argparse.Namespace) -> int:
    from repro.obs.chrometrace import validate_chrome_trace_file
    from repro.obs.validate import (
        validate_metrics_file,
        validate_runlog_file,
        validate_trace_file,
    )

    if not (args.trace or args.metrics or args.chrome or args.runlog):
        print("validate-obs needs --trace, --metrics, --chrome and/or --runlog",
              file=sys.stderr)
        return 2
    errors: list[str] = []
    if args.trace:
        errors.extend(
            f"{args.trace}: {error}"
            for error in validate_trace_file(
                args.trace, require_coverage=args.require_coverage
            )
        )
    for metrics in args.metrics or []:
        errors.extend(
            f"{metrics}: {error}" for error in validate_metrics_file(metrics)
        )
    if args.chrome:
        errors.extend(
            f"{args.chrome}: {error}"
            for error in validate_chrome_trace_file(args.chrome)
        )
    if args.runlog:
        errors.extend(
            f"{args.runlog}: {error}"
            for error in validate_runlog_file(args.runlog)
        )
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} validation error(s)", file=sys.stderr)
        return 1
    print("observability artifacts valid")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    kb = build_resume_knowledge_base()
    converter = DocumentConverter(kb)
    generator = ResumeCorpusGenerator(seed=args.seed)
    docs = generator.generate(args.docs)
    pairs = [(converter.convert(d.html).root, d.ground_truth) for d in docs]
    report = evaluate_accuracy(pairs)
    print(
        format_table(
            ["metric", "measured", "paper"],
            [
                ["avg errors/document", f"{report.avg_errors_per_document:.1f}", "3.9"],
                [
                    "avg concept nodes/document",
                    f"{report.avg_concept_nodes_per_document:.1f}",
                    "53.7",
                ],
                ["avg error %", f"{report.avg_error_percentage:.1f}", "9.2"],
                ["accuracy %", f"{report.accuracy:.1f}", "90.8"],
            ],
            title="Data extraction accuracy (Figure 4)",
        )
    )
    print()
    print(format_histogram(report.histogram(), title="documents per error band"))
    return 0


def _cmd_crawl(args: argparse.Namespace) -> int:
    web = SimulatedWeb(
        resume_count=args.resumes, noise_count=args.noise, seed=args.seed
    )
    crawler = TopicCrawler(web)
    report = crawler.crawl()
    print(
        format_table(
            ["visited", "collected", "precision", "recall"],
            [[report.visited, len(report.collected_urls),
              f"{report.precision:.2f}", f"{report.recall:.2f}"]],
            title="Topic crawl over the simulated web",
        )
    )
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        converter = DocumentConverter(build_resume_knowledge_base())
        for resume in report.collected:
            result = converter.convert(resume.html)
            (out / f"crawled{resume.doc_id:04d}.xml").write_text(
                to_xml_document(result.root), encoding="utf-8"
            )
        print(f"converted {len(report.collected)} crawled resumes into {out}/")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ConversionService, ServiceConfig

    config = ServiceConfig(
        max_workers=args.max_workers or None,
        max_batch=args.max_batch,
        batch_wait=args.batch_wait,
        max_queue=args.max_queue,
        publish=args.publish,
        drain_timeout=args.drain_timeout,
    )
    service = ConversionService(
        build_resume_knowledge_base(),
        state_dir=args.state_dir,
        config=config,
    )

    def ready(host: str, port: int) -> None:
        # Flushed immediately so supervisors (and the smoke tests) can
        # scrape the bound port even when --port 0 picked an ephemeral one.
        print(f"listening on http://{host}:{port}", flush=True)
        print(
            f"workers={config.resolved_workers()} "
            f"max_batch={config.max_batch} state_dir={args.state_dir}",
            flush=True,
        )

    try:
        asyncio.run(service.run(args.host, args.port, ready=ready))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    print("drained cleanly", flush=True)
    return 0


def _migration_rows(report) -> list[list[str]]:
    return [
        ["documents", str(report.documents)],
        ["already conforming", str(report.already_conforming)],
        ["migrated", str(report.migrated)],
        ["repair operations", str(report.total_operations)],
        ["avg edit distance", f"{report.avg_edit_distance:.2f}"],
    ]


def _cmd_evolve_init(args: argparse.Namespace) -> int:
    from repro.schema.evolution import EvolvingSchema

    evolving = EvolvingSchema(
        args.state,
        build_resume_knowledge_base(),
        sup_threshold=args.sup,
        ratio_threshold=args.ratio,
        optional_threshold=args.optional,
        compaction_ratio=args.compaction_ratio,
    )
    if evolving.exists():
        print(
            f"{args.state}: evolution state already initialized "
            f"(schema version {evolving.version})",
            file=sys.stderr,
        )
        return 1
    evolving.save_state()
    print(
        f"initialized evolution state in {args.state}/ "
        f"(sup={evolving.sup_threshold}, ratio={evolving.ratio_threshold}, "
        f"optional={evolving.optional_threshold})"
    )
    return 0


def _cmd_evolve_status(args: argparse.Namespace) -> int:
    from repro.schema.evolution import EvolvingSchema

    evolving = EvolvingSchema(args.state, build_resume_knowledge_base())
    if not evolving.exists():
        print(f"{args.state}: no evolution state (run 'evolve init' first)",
              file=sys.stderr)
        return 1
    print(format_table(["evolution", "value"], evolving.status_rows(),
                       title=f"Evolution state ({args.state})"))
    history = evolving.history
    if history:
        print()
        print(format_table(
            ["version", "documents", "delta"],
            [
                [str(entry["version"]), str(entry["documents"]),
                 entry["summary"]]
                for entry in history
            ],
            title="Version history",
        ))
    if evolving.dtd_text:
        print()
        print(evolving.dtd_text)
    return 0


def _evolve_publish(
    vrepo,
    evolving,
    new_xml: list[str],
    *,
    max_workers: int | None,
    chunk_size: int,
) -> tuple[int, dict | None]:
    """Bring a versioned repository up to the evolving schema.

    Thin CLI wrapper over :func:`repro.service.state.sync_repository`
    (the conversion service's fold lane runs the same publish step):
    delegates the migrate-if-stale + insert + publish work and prints
    the migration table when existing documents needed migrating.
    """
    from repro.service.state import sync_repository

    version, migration = sync_repository(
        vrepo, evolving, new_xml,
        max_workers=max_workers, chunk_size=chunk_size,
    )
    if migration is not None:
        rows = [
            ["documents", str(migration["documents"])],
            ["already conforming", str(migration["already_conforming"])],
            ["migrated", str(migration["migrated"])],
            ["repair operations", str(migration["total_operations"])],
            ["avg edit distance", f"{migration['avg_edit_distance']:.2f}"],
        ]
        print(format_table(["migration", "value"], rows,
                           title="Parallel repository migration"))
    return version, migration


def _cmd_evolve_fold(args: argparse.Namespace) -> int:
    from repro.mapping.versioned import VersionedRepository
    from repro.runtime.engine import CorpusEngine, EngineConfig
    from repro.schema.evolution import EvolvingSchema

    kb = build_resume_knowledge_base()
    evolving_probe = EvolvingSchema(args.state, kb)
    if not evolving_probe.exists():
        print(f"{args.state}: no evolution state (run 'evolve init' first)",
              file=sys.stderr)
        return 1
    if args.files:
        sources = [Path(name).read_text(encoding="utf-8") for name in args.files]
    elif args.generate:
        sources = ResumeCorpusGenerator(
            seed=args.seed, style_weights=_style_weights(args.style)
        ).generate_html(args.generate)
    else:
        print("evolve fold needs input files or --generate N", file=sys.stderr)
        return 2
    engine = CorpusEngine(
        kb,
        engine_config=EngineConfig(
            max_workers=args.max_workers or None,
            chunk_size=args.chunk_size,
        ),
    )
    # Discovery-only folds never read the XML back, so keep it out of
    # the chunk payloads; only repository syncs need the documents.
    run = engine.run(sources, discover=False, collect_xml=bool(args.repository))
    result = run.corpus
    # Re-open against the engine's registry so fold counters and the
    # schema-version gauge land next to the conversion metrics.
    evolving = EvolvingSchema(args.state, kb, registry=result.stats.registry)
    outcome = evolving.fold(result.accumulator)
    print(outcome.summary())
    repository_version = None
    migration = None
    if args.repository:
        if evolving.dtd is None:
            print("no schema derivable yet; repository left untouched",
                  file=sys.stderr)
        else:
            vrepo = VersionedRepository(args.repository)
            repository_version, migration = _evolve_publish(
                vrepo, evolving, result.xml_documents,
                max_workers=args.max_workers or None,
                chunk_size=args.chunk_size,
            )
            print(
                f"published repository version v{repository_version:04d} "
                f"(schema version {evolving.version}) in {args.repository}/"
            )
    for target_name in args.metrics_out or []:
        write_metrics(result.stats.registry, target_name)
        print(f"wrote metrics to {target_name}")
    if args.runlog:
        from repro.obs import build_evolution_record

        ledger = RunLedger(args.runlog)
        record = ledger.append(
            build_evolution_record(
                outcome,
                topic="resume",
                migration=migration,
                repository_version=repository_version,
            )
        )
        print(f"appended evolution record {record['run_id']} to {args.runlog}")
    return 0


def _cmd_evolve_migrate(args: argparse.Namespace) -> int:
    from repro.mapping.persistence import DTD_NAME
    from repro.mapping.versioned import VersionedRepository
    from repro.schema.evolution import EvolvingSchema

    evolving = EvolvingSchema(args.state, build_resume_knowledge_base())
    if evolving.dtd is None:
        print(f"{args.state}: no schema derived yet", file=sys.stderr)
        return 1
    vrepo = VersionedRepository(args.repository)
    if not vrepo.exists():
        print(f"{args.repository}: no versioned repository", file=sys.stderr)
        return 1
    stored_dtd = (
        vrepo.version_dir(vrepo.current_version()) / DTD_NAME
    ).read_text(encoding="utf-8")
    if stored_dtd == evolving.dtd_text:
        print(
            f"{args.repository}: already at schema version "
            f"{evolving.version}; nothing to migrate"
        )
        return 0
    version, report = vrepo.migrate(
        evolving.dtd,
        schema_version=evolving.version,
        max_workers=args.max_workers or None,
        chunk_size=args.chunk_size,
    )
    print(format_table(["migration", "value"], _migration_rows(report),
                       title="Parallel repository migration"))
    print(
        f"published repository version v{version:04d} "
        f"(schema version {evolving.version}) in {args.repository}/"
    )
    return 0


def _cmd_evolve_rollback(args: argparse.Namespace) -> int:
    from repro.mapping.versioned import VersionedRepository

    vrepo = VersionedRepository(args.repository)
    try:
        previous = vrepo.rollback()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(
        f"{args.repository}: CURRENT rolled back to v{previous:04d} "
        f"(superseded versions kept on disk; 'evolve fold' or 'evolve "
        f"migrate' publishes forward again)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-web",
        description="HTML-to-XML conversion and majority-schema discovery "
        "(ICDE 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen-corpus", help="generate synthetic resume HTML")
    gen.add_argument("--count", type=int, default=50)
    gen.add_argument("--seed", type=int, default=1966)
    gen.add_argument("--out", default="corpus")
    gen.add_argument(
        "--style",
        action="append",
        metavar="NAME",
        help="restrict generation to this rendering style (repeatable; "
        "default: all styles uniformly)",
    )
    gen.set_defaults(func=_cmd_gen_corpus)

    conv = sub.add_parser("html2xml", help="convert HTML files to XML")
    conv.add_argument("files", nargs="+")
    conv.add_argument("--out", default="xml")
    conv.add_argument(
        "--metrics-out",
        action="append",
        metavar="PATH",
        help="write the per-rule timing registry (.prom/.txt for "
        "Prometheus text, anything else for JSON; repeatable)",
    )
    conv.add_argument(
        "--no-fast-tagger",
        action="store_true",
        help="disable the Aho-Corasick tagging fast path (differential "
        "baseline; output is guaranteed identical either way)",
    )
    conv.add_argument(
        "--no-fast-parser",
        action="store_true",
        help="disable the bulk-scanning HTML tokenizer (differential "
        "baseline; the parse tree is guaranteed identical either way)",
    )
    conv.add_argument(
        "--no-fast-tidy",
        action="store_true",
        help="disable the single-snapshot HTML cleanser (differential "
        "baseline; the tidied tree is guaranteed identical either way)",
    )
    conv.set_defaults(func=_cmd_html2xml)

    engine = sub.add_parser(
        "convert-corpus",
        help="convert a corpus with the parallel streaming engine",
    )
    engine.add_argument("files", nargs="*")
    engine.add_argument(
        "--generate",
        type=int,
        default=0,
        metavar="N",
        help="generate N synthetic resumes instead of reading files",
    )
    engine.add_argument("--seed", type=int, default=1966)
    engine.add_argument(
        "--style",
        action="append",
        metavar="NAME",
        help="restrict --generate to this rendering style (repeatable)",
    )
    engine.add_argument("--out", default="", help="directory for converted XML")
    engine.add_argument(
        "--max-workers",
        type=int,
        default=0,
        help="worker processes (0 = one per CPU, 1 = serial in-process)",
    )
    engine.add_argument(
        "--chunk-size",
        type=int,
        default=0,
        help="documents per worker chunk (0 = adaptive: start small and "
        "grow until per-chunk overhead is amortized)",
    )
    engine.add_argument(
        "--discover",
        action="store_true",
        help="also mine the majority schema and print the DTD",
    )
    engine.add_argument("--sup", type=float, default=0.4)
    engine.add_argument("--ratio", type=float, default=0.0)
    engine.add_argument(
        "--trace-out",
        default="",
        metavar="PATH",
        help="record spans + provenance events and write them as JSONL",
    )
    engine.add_argument(
        "--trace-chrome",
        default="",
        metavar="PATH",
        help="also export the span tree as Chrome trace-event JSON "
        "(open in Perfetto / chrome://tracing; worker spans re-based "
        "onto the parent timeline)",
    )
    engine.add_argument(
        "--runlog",
        default="",
        metavar="PATH",
        help="append one run record (quantiles, throughput, failures, "
        "slowest documents) to this JSONL ledger; see 'report'/'runs'",
    )
    engine.add_argument(
        "--progress",
        action="store_true",
        help="force the live progress/ETA line on stderr even off-TTY "
        "(default: auto-enabled only on a terminal)",
    )
    engine.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the live progress line even on a terminal",
    )
    engine.add_argument(
        "--metrics-out",
        action="append",
        metavar="PATH",
        help="write the run's metrics registry (.prom/.txt for Prometheus "
        "text, anything else for JSON; repeatable)",
    )
    engine.add_argument(
        "--no-fast-tagger",
        action="store_true",
        help="disable the Aho-Corasick tagging fast path (differential "
        "baseline; output is guaranteed identical either way)",
    )
    engine.add_argument(
        "--no-fast-parser",
        action="store_true",
        help="disable the bulk-scanning HTML tokenizer (differential "
        "baseline; the parse tree is guaranteed identical either way)",
    )
    engine.add_argument(
        "--no-fast-tidy",
        action="store_true",
        help="disable the single-snapshot HTML cleanser (differential "
        "baseline; the tidied tree is guaranteed identical either way)",
    )
    engine.add_argument(
        "--on-error",
        choices=["fail-fast", "skip", "quarantine"],
        default="fail-fast",
        help="what to do with documents that fail to convert: abort the "
        "run (default), skip them (failures are counted and reported), "
        "or skip + save source and error JSON to --quarantine-dir; "
        "skip/quarantine also recover crashed worker processes by "
        "rebuilding the pool and bisecting the failed chunk",
    )
    engine.add_argument(
        "--quarantine-dir",
        default="quarantine",
        metavar="DIR",
        help="directory for quarantined documents (--on-error=quarantine)",
    )
    engine.add_argument(
        "--chaos-fail-marker",
        default="",
        metavar="TEXT",
        help="fault injection: documents containing TEXT raise inside "
        "the pipeline (chaos testing; see the chaos-smoke CI job)",
    )
    engine.add_argument(
        "--chaos-kill-marker",
        default="",
        metavar="TEXT",
        help="fault injection: a worker that receives a document "
        "containing TEXT hard-exits, simulating an OOM/segfault kill",
    )
    engine.add_argument(
        "--checkpoint-dir",
        default="",
        metavar="DIR",
        help="durably append this run's path statistics to an "
        "accumulator checkpoint (snapshot + delta log; crash-safe, "
        "compacted automatically) for sharded merge-later discovery",
    )
    engine.add_argument(
        "--fold-into",
        default="",
        metavar="STATE",
        help="fold this run's path statistics into an 'evolve init' "
        "state directory and re-derive the schema online",
    )
    engine.set_defaults(func=_cmd_convert_corpus)

    disc = sub.add_parser("discover", help="discover majority schema + DTD")
    disc.add_argument("files", nargs="+")
    disc.add_argument("--sup", type=float, default=0.4)
    disc.add_argument("--ratio", type=float, default=0.0)
    disc.add_argument(
        "--patterns",
        action="store_true",
        help="render (e1, e2)+ group patterns in the DTD",
    )
    disc.set_defaults(func=_cmd_discover)

    integ = sub.add_parser(
        "integrate", help="discover a DTD, conform documents, save a repository"
    )
    integ.add_argument("files", nargs="+")
    integ.add_argument("--sup", type=float, default=0.4)
    integ.add_argument("--ratio", type=float, default=0.0)
    integ.add_argument("--optional", type=float, default=0.9)
    integ.add_argument("--out", default="repository")
    integ.set_defaults(func=_cmd_integrate)

    insp = sub.add_parser("inspect", help="inspect a saved repository")
    insp.add_argument("store")
    insp.add_argument("--query", default="", help="slash path to evaluate")
    insp.set_defaults(func=_cmd_inspect)

    stats = sub.add_parser(
        "stats", help="re-render saved engine metrics (JSON) as report tables"
    )
    stats.add_argument("metrics", help="metrics JSON written by --metrics-out")
    stats.set_defaults(func=_cmd_stats)

    vobs = sub.add_parser(
        "validate-obs",
        help="validate trace JSONL / metrics files against the checked-in schema",
    )
    vobs.add_argument("--trace", default="", help="trace JSONL to validate")
    vobs.add_argument(
        "--metrics",
        action="append",
        metavar="PATH",
        help="metrics file to validate (.prom/.txt exposition or JSON; repeatable)",
    )
    vobs.add_argument(
        "--chrome",
        default="",
        metavar="PATH",
        help="Chrome trace-event JSON (--trace-chrome output) to validate",
    )
    vobs.add_argument(
        "--runlog",
        default="",
        metavar="PATH",
        help="run-ledger JSONL (--runlog output) to validate",
    )
    vobs.add_argument(
        "--require-coverage",
        action="store_true",
        help="also require every schema-listed span name and event kind",
    )
    vobs.set_defaults(func=_cmd_validate_obs)

    report = sub.add_parser(
        "report", help="render one run-ledger record as report tables"
    )
    report.add_argument("ledger", help="run-ledger JSONL written by --runlog")
    report.add_argument(
        "--run", default="", metavar="RUN_ID",
        help="render this run id (default: the latest record)",
    )
    report.set_defaults(func=_cmd_report)

    runs = sub.add_parser(
        "runs",
        help="list the run ledger and flag regressions (or diff benchmark JSONs)",
    )
    runs.add_argument(
        "ledger", nargs="?", default="",
        help="run-ledger JSONL written by --runlog",
    )
    runs.add_argument(
        "--threshold", type=float, default=0.2,
        help="relative change that counts as a regression (default 0.2)",
    )
    runs.add_argument(
        "--check", action="store_true",
        help="exit 1 when a regression is flagged (CI gate)",
    )
    runs.add_argument(
        "--limit", type=int, default=20,
        help="show at most this many most-recent ledger rows",
    )
    runs.add_argument(
        "--bench-current", default="", metavar="PATH",
        help="benchmark JSON to check (with --bench-baseline; skips the ledger)",
    )
    runs.add_argument(
        "--bench-baseline", default="", metavar="PATH",
        help="committed benchmark baseline JSON (e.g. BENCH_engine.json)",
    )
    runs.set_defaults(func=_cmd_runs)

    ev = sub.add_parser("evaluate", help="run the Figure 4 accuracy experiment")
    ev.add_argument("--docs", type=int, default=50)
    ev.add_argument("--seed", type=int, default=1966)
    ev.set_defaults(func=_cmd_evaluate)

    evolve = sub.add_parser(
        "evolve",
        help="online schema evolution: durable incremental discovery "
        "with a versioned repository",
    )
    evolve_sub = evolve.add_subparsers(dest="evolve_command", required=True)

    einit = evolve_sub.add_parser(
        "init", help="create an evolution state directory"
    )
    einit.add_argument("state", help="state directory to create")
    einit.add_argument("--sup", type=float, default=0.4)
    einit.add_argument("--ratio", type=float, default=0.0)
    einit.add_argument("--optional", type=float, default=None)
    einit.add_argument(
        "--compaction-ratio",
        type=float,
        default=1.0,
        help="compact the delta log once it reaches this multiple of "
        "the snapshot size (default 1.0)",
    )
    einit.set_defaults(func=_cmd_evolve_init)

    estatus = evolve_sub.add_parser(
        "status", help="show schema version, history, and checkpoint sizes"
    )
    estatus.add_argument("state")
    estatus.set_defaults(func=_cmd_evolve_status)

    efold = evolve_sub.add_parser(
        "fold",
        help="convert new documents and fold them into the schema "
        "(bumps the version only on real change)",
    )
    efold.add_argument("state")
    efold.add_argument("files", nargs="*")
    efold.add_argument(
        "--generate", type=int, default=0, metavar="N",
        help="generate N synthetic resumes instead of reading files",
    )
    efold.add_argument("--seed", type=int, default=1966)
    efold.add_argument(
        "--style",
        action="append",
        metavar="NAME",
        help="restrict --generate to this rendering style (repeatable)",
    )
    efold.add_argument(
        "--max-workers", type=int, default=0,
        help="worker processes for conversion and migration "
        "(0 = one per CPU, 1 = serial in-process)",
    )
    efold.add_argument("--chunk-size", type=int, default=16)
    efold.add_argument(
        "--repository", default="", metavar="DIR",
        help="versioned repository to keep in step: on a version bump "
        "its documents are migrated in parallel, then the new documents "
        "are inserted and the combined store is published as the next "
        "repository version",
    )
    efold.add_argument(
        "--runlog", default="", metavar="PATH",
        help="append one evolution record to this JSONL ledger",
    )
    efold.add_argument(
        "--metrics-out",
        action="append",
        metavar="PATH",
        help="write conversion + evolution metrics (.prom/.txt for "
        "Prometheus text, anything else for JSON; repeatable)",
    )
    efold.set_defaults(func=_cmd_evolve_fold)

    emigrate = evolve_sub.add_parser(
        "migrate",
        help="migrate a versioned repository onto the state's current DTD",
    )
    emigrate.add_argument("state")
    emigrate.add_argument("--repository", required=True, metavar="DIR")
    emigrate.add_argument(
        "--max-workers", type=int, default=0,
        help="migration worker processes (0 = one per CPU, 1 = serial)",
    )
    emigrate.add_argument("--chunk-size", type=int, default=16)
    emigrate.set_defaults(func=_cmd_evolve_migrate)

    erollback = evolve_sub.add_parser(
        "rollback",
        help="repoint a versioned repository at its previous version",
    )
    erollback.add_argument("--repository", required=True, metavar="DIR")
    erollback.set_defaults(func=_cmd_evolve_rollback)

    crawl = sub.add_parser("crawl", help="crawl the simulated web for resumes")
    crawl.add_argument("--resumes", type=int, default=30)
    crawl.add_argument("--noise", type=int, default=100)
    crawl.add_argument("--seed", type=int, default=7)
    crawl.add_argument("--out", default="")
    crawl.set_defaults(func=_cmd_crawl)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived conversion service over HTTP "
             "(POST /convert, /convert/batch; GET /schemas, /metrics, /healthz)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--state-dir", default="service-state", metavar="DIR",
                       help="per-topic schema/repository state root")
    serve.add_argument("--max-workers", type=int, default=0,
                       help="engine worker processes per topic "
                            "(0 = min(4, CPUs); 1 = inline)")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="documents per micro-batched engine chunk")
    serve.add_argument("--batch-wait", type=float, default=0.005,
                       help="seconds to linger for batch companions "
                            "when all dispatch slots are busy")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="queued documents per lane before submits "
                            "block (backpressure bound)")
    serve.add_argument("--publish", action="store_true",
                       help="publish folded documents into a versioned "
                            "repository under the state dir")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to wait for in-flight requests on "
                            "SIGTERM/SIGINT before forcing the drain")
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Frequent-path mining (Section 3.2).

For a label path ``p`` over the corpus ``D``::

    support(p)      = freq(p, S) / |D|
    supportRatio(p) = support(p) / support(p'),  p = p' . e

where ``freq(p, S)`` counts the documents whose path set contains ``p``
(path sets are per-document sets, so a document contributes at most once
-- this gives the paper's stated property that ``support(p) = 1`` iff the
path occurs in every document).  ``supportRatio`` counters the natural
decay of support with path length; the root path has ratio 1.

A path is *frequent* when ``support >= supThreshold`` and
``supportRatio >= ratioThreshold``.  Mining proceeds level-wise over the
prefix tree; ``supThreshold`` is anti-monotone ("once a path (prefix)
does not satisfy supThreshold, all its superpaths need not be
considered"), and concept constraints prune candidate paths before any
counting (Section 4.2).  The number of candidate nodes explored is
reported for the search-space experiment.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.concepts.constraints import ConstraintSet
from repro.schema.accumulator import PathAccumulator
from repro.schema.paths import DocumentPaths, LabelPath


@dataclass
class PathStatistics:
    """Corpus-level support statistics for label paths."""

    document_count: int
    doc_frequency: Counter[LabelPath] = field(default_factory=Counter)

    @classmethod
    def from_documents(cls, documents: list[DocumentPaths]) -> "PathStatistics":
        """Count, for every label path, the documents realizing it."""
        stats = cls(document_count=len(documents))
        for doc in documents:
            stats.doc_frequency.update(doc.paths)
        return stats

    @classmethod
    def from_accumulator(cls, accumulator: PathAccumulator) -> "PathStatistics":
        """View merged incremental statistics as mining statistics.

        The frequency counter is shared, not copied -- accumulators are
        treated as frozen once mining starts.
        """
        return cls(
            document_count=accumulator.document_count,
            doc_frequency=accumulator.doc_frequency,
        )

    def support(self, path: LabelPath) -> float:
        """``freq(p, S) / |D|`` in ``[0, 1]``."""
        if self.document_count == 0:
            return 0.0
        return self.doc_frequency[path] / self.document_count

    def support_ratio(self, path: LabelPath) -> float:
        """``support(p) / support(parent(p))``; 1.0 for the root path."""
        if len(path) <= 1:
            return 1.0
        parent_support = self.support(path[:-1])
        if parent_support == 0.0:
            return 0.0
        return self.support(path) / parent_support

    def observed_labels(self) -> set[str]:
        """All labels occurring anywhere in the corpus paths."""
        labels: set[str] = set()
        for path in self.doc_frequency:
            labels.update(path)
        return labels


@dataclass
class FrequentPathSet:
    """Result of frequent-path mining.

    ``paths`` is prefix-closed by construction.  ``nodes_explored`` counts
    candidate label paths generated (including the root), the quantity
    the Section 4.2 experiment reports; ``nodes_counted`` additionally
    excludes candidates that turned out to have zero support ("without
    extending nodes with zero support").
    """

    paths: set[LabelPath]
    statistics: PathStatistics
    sup_threshold: float
    ratio_threshold: float
    nodes_explored: int = 0
    nodes_counted: int = 0

    def support(self, path: LabelPath) -> float:
        """Corpus support of ``path``."""
        return self.statistics.support(path)

    def max_depth(self) -> int:
        """Length of the longest frequent path."""
        return max((len(p) for p in self.paths), default=0)

    def leaves(self) -> list[LabelPath]:
        """Frequent paths that are not a prefix of a longer frequent path."""
        return [
            path
            for path in self.paths
            if not any(other[: len(path)] == path and len(other) > len(path)
                       for other in self.paths)
        ]


def mine_frequent_paths(
    documents: list[DocumentPaths] | PathAccumulator,
    *,
    sup_threshold: float = 0.5,
    ratio_threshold: float = 0.0,
    constraints: ConstraintSet | None = None,
    candidate_labels: set[str] | None = None,
    extend_zero_support: bool = False,
    max_length: int | None = None,
) -> FrequentPathSet:
    """Mine the frequent label paths of a corpus.

    ``documents`` is either a list of per-document path sets or a
    :class:`~repro.schema.accumulator.PathAccumulator` of merged
    incremental statistics; both yield identical results because mining
    only consumes document frequencies.  ``candidate_labels`` is the
    alphabet used to extend prefixes; it defaults to the labels observed
    in the corpus.  Constraint checking
    receives the path *without* its root label (the root concept is not a
    constrained depth level).  With ``extend_zero_support=True`` the miner
    mimics pure constraint-based enumeration: every constraint-admissible
    candidate is generated and counted even when its parent has support
    below the threshold -- this reproduces the search-space accounting of
    Section 4.2 and requires a depth bound (``constraints.max_depth`` or
    ``max_length``) to terminate.
    """
    statistics = (
        PathStatistics.from_accumulator(documents)
        if isinstance(documents, PathAccumulator)
        else PathStatistics.from_documents(documents)
    )
    labels = (
        sorted(candidate_labels)
        if candidate_labels is not None
        else sorted(statistics.observed_labels())
    )
    constraints = constraints or ConstraintSet()
    if extend_zero_support and constraints.max_depth is None and max_length is None:
        raise ValueError(
            "extend_zero_support enumeration needs a depth bound "
            "(constraints.max_depth or max_length)"
        )

    # Roots: every label observed at the root of some document (the
    # length-1 paths of the frequency table, however it was built).
    root_labels = sorted(
        {path[0] for path in statistics.doc_frequency if len(path) == 1}
    )
    if not root_labels:
        root_labels = labels[:1]

    frequent: set[LabelPath] = set()
    explored = 0
    counted = 0
    frontier: list[LabelPath] = []

    for root_label in root_labels:
        path = (root_label,)
        explored += 1
        support = statistics.support(path)
        if support > 0:
            counted += 1
        if support >= sup_threshold and support > 0:
            frequent.add(path)
        if (support >= sup_threshold and support > 0) or extend_zero_support:
            frontier.append(path)

    while frontier:
        next_frontier: list[LabelPath] = []
        for prefix in frontier:
            if max_length is not None and len(prefix) >= max_length:
                continue
            for label in labels:
                candidate = prefix + (label,)
                if not constraints.allows_path(candidate[1:]):
                    continue
                explored += 1
                support = statistics.support(candidate)
                if support > 0:
                    counted += 1
                if (
                    prefix in frequent
                    and support >= sup_threshold
                    and support > 0
                    and statistics.support_ratio(candidate) >= ratio_threshold
                ):
                    # Requiring the prefix to be frequent keeps the result
                    # prefix-closed even when a parent passed the support
                    # threshold but failed the ratio threshold.
                    frequent.add(candidate)
                # A zero-support path occurs in no document, so neither it
                # nor any superpath can ever be frequent (antimonotone) --
                # it is only extended in enumeration mode.  This also
                # keeps supThreshold = 0 from diverging.
                if (support >= sup_threshold and support > 0) or extend_zero_support:
                    next_frontier.append(candidate)
        frontier = next_frontier

    return FrequentPathSet(
        paths=frequent,
        statistics=statistics,
        sup_threshold=sup_threshold,
        ratio_threshold=ratio_threshold,
        nodes_explored=explored,
        nodes_counted=counted,
    )

"""Unification of similarly structured schema components.

Section 3.2 notes: "similarly structured components in a schema
discovered by this approach can be further unified.  Because of space
limitations, this optional step is not described in this paper but can be
found in [13]."  This module implements the step in the form the DTD
needs it: occurrences of the *same label* under different parents are
structurally merged (so one element declaration covers all contexts), and
sibling subtrees whose child-label sets are sufficiently similar (Jaccard
similarity above a threshold) have their child sets unioned, smoothing
out structures that differ only by a rarely missing child.
"""

from __future__ import annotations

from repro.schema.majority import MajoritySchema, SchemaNode


def jaccard(a: set[str], b: set[str]) -> float:
    """Jaccard similarity of two label sets (1.0 for two empty sets)."""
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union)


def _merge_children(target: SchemaNode, source: SchemaNode) -> None:
    """Union ``source``'s subtree into ``target`` (labels aligned)."""
    for label, source_child in source.children.items():
        target_child = target.children.get(label)
        if target_child is None:
            target_child = target.ensure_child(label, source_child.support)
        else:
            target_child.support = max(target_child.support, source_child.support)
        _merge_children(target_child, source_child)


def unify_same_label(schema: MajoritySchema) -> int:
    """Merge the child structures of same-label nodes across contexts.

    After this, every occurrence of a label in the schema tree exposes
    the union of the children it had anywhere -- the invariant a DTD
    requires.  Returns the number of labels that needed merging.
    """
    by_label: dict[str, list[SchemaNode]] = {}
    for node in schema.root.iter_nodes():
        by_label.setdefault(node.label, []).append(node)
    merged = 0
    for label, nodes in by_label.items():
        if len(nodes) < 2:
            continue
        union = SchemaNode(label, nodes[0].path)
        for node in nodes:
            _merge_children(union, node)
        changed = any(set(node.children) != set(union.children) for node in nodes)
        for node in nodes:
            _merge_children(node, union)
        if changed:
            merged += 1
    return merged


def unify_similar_siblings(schema: MajoritySchema, *, threshold: float = 0.6) -> int:
    """Union the child sets of sibling subtrees with similar structure.

    Two children of the same schema node whose child-label sets have
    Jaccard similarity >= ``threshold`` (and are non-trivial: at least
    one child each) get the union of both structures.  Returns the
    number of sibling pairs unified.
    """
    unified = 0
    for node in list(schema.root.iter_nodes()):
        children = list(node.children.values())
        for i, left in enumerate(children):
            for right in children[i + 1 :]:
                left_labels = set(left.children)
                right_labels = set(right.children)
                if not left_labels or not right_labels:
                    continue
                if jaccard(left_labels, right_labels) >= threshold and left_labels != right_labels:
                    _merge_children(left, right)
                    _merge_children(right, left)
                    unified += 1
    return unified


def unify_schema(schema: MajoritySchema, *, sibling_threshold: float = 0.6) -> MajoritySchema:
    """Apply both unification passes in place and return the schema."""
    unify_similar_siblings(schema, threshold=sibling_threshold)
    unify_same_label(schema)
    return schema

"""DataGuide baseline: the upper-bound schema ([19], Section 1).

A DataGuide comprises *every* structure found in the input documents --
equivalently, the majority schema at ``supThreshold -> 0``.  The paper
argues it provides "too much detail" for integration; experiment E7
quantifies that by comparing schema sizes and repair costs.
"""

from __future__ import annotations

from repro.schema.frequent import FrequentPathSet, PathStatistics
from repro.schema.majority import MajoritySchema
from repro.schema.paths import DocumentPaths, LabelPath


def build_dataguide(documents: list[DocumentPaths]) -> MajoritySchema:
    """The schema tree of all label paths with non-zero support.

    Construction is a single pass over the union of the documents' path
    sets -- no mining is needed because membership is the only criterion.
    """
    statistics = PathStatistics.from_documents(documents)
    paths: set[LabelPath] = set(statistics.doc_frequency)
    if not paths:
        raise ValueError("empty corpus")
    frequent = FrequentPathSet(
        paths=paths,
        statistics=statistics,
        sup_threshold=0.0,
        ratio_threshold=0.0,
        nodes_explored=len(paths),
        nodes_counted=len(paths),
    )
    return MajoritySchema.from_frequent_paths(frequent)

"""DTD model, derivation from a majority schema, rendering, parsing.

Content models follow the paper's grammar (Section 3.3)::

    cm := e | cm1 | cm2 | cm1 , cm2 | cm? | cm* | cm+

restricted, as in the paper's output, to a sequence of uniquely named
child elements each carrying a multiplicity marker, preceded by
``(#PCDATA)`` (converted documents keep mixed text in ``val``
attributes, which the paper's DTD rendering shows as leading #PCDATA).

Derivation = ordering rule + repetition rule over the majority schema.
DTDs declare each element name once, so when the same concept appears
under several parents its content models are unified (children merged,
multiplicities OR-ed) -- the name-level counterpart of the component
unification the paper defers to [13].
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.obs.tracer import NullTracer, Tracer, resolve_tracer
from repro.schema.accumulator import PathAccumulator
from repro.schema.majority import MajoritySchema, SchemaNode
from repro.schema.ordering import ordered_labels
from repro.schema.paths import DocumentPaths
from repro.schema.repetition import (
    DEFAULT_MULT_THRESHOLD,
    DEFAULT_REP_THRESHOLD,
    is_repetitive,
    presence_fraction,
)


class Multiplicity(enum.Enum):
    """Occurrence markers of DTD content particles."""

    ONE = ""
    OPTIONAL = "?"
    PLUS = "+"
    STAR = "*"

    def combine(self, other: "Multiplicity") -> "Multiplicity":
        """Least upper bound when unifying content models.

        Repetition from either side survives; optionality from either
        side survives; both together give ``*``.
        """
        repeats = self in (Multiplicity.PLUS, Multiplicity.STAR) or other in (
            Multiplicity.PLUS,
            Multiplicity.STAR,
        )
        optional = self in (Multiplicity.OPTIONAL, Multiplicity.STAR) or other in (
            Multiplicity.OPTIONAL,
            Multiplicity.STAR,
        )
        if repeats and optional:
            return Multiplicity.STAR
        if repeats:
            return Multiplicity.PLUS
        if optional:
            return Multiplicity.OPTIONAL
        return Multiplicity.ONE


@dataclass
class ContentParticle:
    """One ``name`` + multiplicity entry of a content model."""

    name: str
    multiplicity: Multiplicity = Multiplicity.ONE

    def render(self) -> str:
        return f"{self.name}{self.multiplicity.value}"


@dataclass
class DTDElement:
    """One ``<!ELEMENT ...>`` declaration."""

    name: str
    particles: list[ContentParticle] = field(default_factory=list)
    has_pcdata: bool = True

    def is_leaf(self) -> bool:
        """True for pure ``(#PCDATA)`` elements."""
        return not self.particles

    def particle_for(self, child_name: str) -> ContentParticle | None:
        """The particle declaring ``child_name``, or ``None``."""
        for particle in self.particles:
            if particle.name == child_name:
                return particle
        return None

    def render(self) -> str:
        if self.is_leaf():
            return f"<!ELEMENT {self.name} (#PCDATA)>"
        inner = ", ".join(particle.render() for particle in self.particles)
        if self.has_pcdata:
            return f"<!ELEMENT {self.name} ((#PCDATA), {inner})>"
        return f"<!ELEMENT {self.name} ({inner})>"


@dataclass
class DTD:
    """A document type definition: declarations + a root element name."""

    root_name: str
    elements: dict[str, DTDElement] = field(default_factory=dict)

    def element(self, name: str) -> DTDElement:
        """The declaration of ``name`` (KeyError when undeclared)."""
        return self.elements[name]

    def declare(self, element: DTDElement) -> DTDElement:
        """Add a declaration (unifying with an existing one by name)."""
        existing = self.elements.get(element.name)
        if existing is None:
            self.elements[element.name] = element
            return element
        for particle in element.particles:
            held = existing.particle_for(particle.name)
            if held is None:
                existing.particles.append(particle)
            else:
                held.multiplicity = held.multiplicity.combine(particle.multiplicity)
        return existing

    def element_count(self) -> int:
        """Number of declared elements."""
        return len(self.elements)

    def render(self) -> str:
        """The full DTD text, root declaration first, children next,
        breadth-first from the root (the order the paper prints)."""
        ordered: list[str] = []
        seen: set[str] = set()
        queue = [self.root_name]
        while queue:
            name = queue.pop(0)
            if name in seen or name not in self.elements:
                continue
            seen.add(name)
            ordered.append(name)
            queue.extend(p.name for p in self.elements[name].particles)
        # Any unreachable declarations render last, sorted.
        ordered.extend(sorted(set(self.elements) - seen))
        return "\n".join(self.elements[name].render() for name in ordered)

    # -- parsing (round-trip support) -------------------------------------

    # Content models never contain '>', so each declaration is matched
    # up to its closing angle bracket.
    _DECL_RE = re.compile(r"<!ELEMENT\s+([A-Za-z][\w.-]*)\s+\(([^>]*)\)\s*>")

    @classmethod
    def parse(cls, text: str, *, root_name: str | None = None) -> "DTD":
        """Parse DTD text produced by :meth:`render`.

        The first declaration is taken as the root unless ``root_name``
        is given.
        """
        elements: dict[str, DTDElement] = {}
        first: str | None = None
        for match in cls._DECL_RE.finditer(text):
            name, body = match.group(1), match.group(2)
            if first is None:
                first = name
            particles: list[ContentParticle] = []
            has_pcdata = False
            for raw in re.split(r"[,|]", body):
                token = raw.strip().strip("()").strip()
                if not token:
                    continue
                if token == "#PCDATA":
                    has_pcdata = True
                    continue
                multiplicity = Multiplicity.ONE
                if token[-1] in "?+*":
                    multiplicity = Multiplicity(token[-1])
                    token = token[:-1]
                particles.append(ContentParticle(token, multiplicity))
            elements[name] = DTDElement(name, particles, has_pcdata)
        if first is None:
            raise ValueError("no element declarations found")
        return cls(root_name or first, elements)


def derive_dtd(
    schema: MajoritySchema,
    documents: list[DocumentPaths] | PathAccumulator,
    *,
    rep_threshold: int = DEFAULT_REP_THRESHOLD,
    mult_threshold: float = DEFAULT_MULT_THRESHOLD,
    optional_threshold: float | None = None,
    lowercase_names: bool = True,
    index=None,
    tracer: "Tracer | NullTracer | None" = None,
) -> DTD:
    """Derive a DTD from a majority schema (Section 3.3).

    ``documents`` may be the materialized corpus path sets or a merged
    :class:`~repro.schema.accumulator.PathAccumulator`; the ordering,
    repetition, and presence statistics agree between the two sources.
    ``optional_threshold`` enables the optional-element extension the
    paper mentions: a child present in fewer than that fraction of its
    parent's documents is marked ``?`` (``*`` when also repetitive).  The
    default ``None`` reproduces the paper exactly: "no element should be
    optional".  ``lowercase_names`` maps concept tags (upper-case in the
    XML documents) to the lower-case names the paper's DTD uses.
    ``index`` (a :class:`repro.schema.index.PathIndex` over the same
    corpus) accelerates the ordering rule as Section 3.3 suggests.
    ``tracer`` records the derivation as a ``discover.derive_dtd`` span
    with a nested ``discover.repetition_ordering`` span covering the
    per-node repetition/ordering rule work.
    """
    tracer = resolve_tracer(tracer)

    def dtd_name(label: str) -> str:
        return label.lower() if lowercase_names else label

    with tracer.span("discover.derive_dtd") as derive_span:
        dtd = DTD(dtd_name(schema.root.label))
        with tracer.span("discover.repetition_ordering") as order_span:
            nodes_ordered = 0
            queue: list[SchemaNode] = [schema.root]
            while queue:
                node = queue.pop(0)
                labels = list(node.children)
                if index is not None:
                    order = ordered_labels(node.path, labels, index=index)
                else:
                    order = ordered_labels(node.path, labels, documents=documents)
                particles: list[ContentParticle] = []
                for label in order:
                    child_path = node.path + (label,)
                    multiplicity = Multiplicity.ONE
                    if is_repetitive(
                        documents,
                        child_path,
                        rep_threshold=rep_threshold,
                        mult_threshold=mult_threshold,
                    ):
                        multiplicity = Multiplicity.PLUS
                    if (
                        optional_threshold is not None
                        and presence_fraction(documents, child_path)
                        < optional_threshold
                    ):
                        multiplicity = multiplicity.combine(Multiplicity.OPTIONAL)
                    particles.append(ContentParticle(dtd_name(label), multiplicity))
                dtd.declare(DTDElement(dtd_name(node.label), particles))
                queue.extend(node.children.values())
                nodes_ordered += 1
            order_span.set(schema_nodes=nodes_ordered)
        with tracer.span("discover.cycle_break"):
            _break_required_cycles(dtd)
        derive_span.set(elements=dtd.element_count())
    return dtd


def _break_required_cycles(dtd: DTD) -> None:
    """Demote back-edges in the required-particle graph to optional.

    Element declarations are unified by name across contexts, so two
    schema paths ``...A/B...`` and ``...B/A...`` produce mutually
    *required* children A <-> B -- a DTD no finite document can satisfy.
    Back edges are demoted to optional (``?``; ``*`` when also
    repetitive), which keeps the structure expressible while restoring
    satisfiability.  One DFS pass can miss cycles routed through nodes it
    already finished, so passes repeat -- each demotes one edge -- until
    the required graph is acyclic.
    """

    def find_back_edge() -> ContentParticle | None:
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str) -> ContentParticle | None:
            if name in done or name not in dtd.elements:
                return None
            visiting.add(name)
            for particle in dtd.elements[name].particles:
                if particle.multiplicity not in (Multiplicity.ONE, Multiplicity.PLUS):
                    continue
                if particle.name in visiting:
                    return particle
                found = visit(particle.name)
                if found is not None:
                    return found
            visiting.discard(name)
            done.add(name)
            return None

        for start in [dtd.root_name, *sorted(dtd.elements)]:
            found = visit(start)
            if found is not None:
                return found
        return None

    while (edge := find_back_edge()) is not None:
        edge.multiplicity = edge.multiplicity.combine(Multiplicity.OPTIONAL)

"""Incremental, mergeable label-path statistics.

:class:`PathAccumulator` captures everything Section 3 needs from a
corpus -- document frequencies (frequent-path mining), sibling
multiplicities (repetition rule), and average child positions (ordering
rule) -- as *sufficient statistics* that can be accumulated one document
at a time and merged across corpus partitions::

    merge(a, b) == merge(b, a)                      (commutative)
    merge(merge(a, b), c) == merge(a, merge(b, c))  (associative)
    merge(a, PathAccumulator()) == a                (identity)

(Position sums are floating point, so associativity holds up to the
usual rounding of re-associated additions; all counters are exact.)

This is what lets :class:`repro.runtime.CorpusEngine` discover a schema
over a corpus without ever materializing every converted tree: workers
accumulate per-chunk statistics, the parent merges them, and mining /
DTD derivation run over the merged accumulator.

Multiplicities are kept as a per-path histogram (multiplicity value ->
number of documents) rather than a pre-thresholded count, so
``repThreshold`` stays a query-time parameter exactly as in the
list-of-documents code path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from sys import intern

from repro.dom.node import Element
from repro.schema.paths import DocumentPaths, LabelPath, extract_paths

# Version tag of the compact pickled form (see __getstate__).
_WIRE_VERSION = 1


@dataclass
class PathAccumulator:
    """Mergeable corpus-level statistics over root-emanating label paths.

    ``doc_frequency[p]``        -- documents whose path set contains ``p``
    ``position_sum[p]``         -- sum over those documents of the per-document
                                   average child position of ``p``'s tail
    ``multiplicity_docs[p][k]`` -- documents realizing ``p`` with a maximum
                                   same-label sibling multiplicity of ``k``
    """

    document_count: int = 0
    doc_frequency: Counter[LabelPath] = field(default_factory=Counter)
    position_sum: dict[LabelPath, float] = field(default_factory=dict)
    multiplicity_docs: dict[LabelPath, Counter[int]] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_documents(cls, documents: list[DocumentPaths]) -> "PathAccumulator":
        """Single-pass accumulation of a corpus of path sets."""
        accumulator = cls()
        for doc in documents:
            accumulator.add(doc)
        return accumulator

    @classmethod
    def from_trees(cls, roots: list[Element]) -> "PathAccumulator":
        """Accumulate converted XML trees directly."""
        accumulator = cls()
        for root in roots:
            accumulator.add_tree(root)
        return accumulator

    def add(self, doc: DocumentPaths) -> None:
        """Fold one document's path set into the statistics."""
        self.document_count += 1
        self.doc_frequency.update(doc.paths)
        for path in doc.paths:
            position = doc.avg_position.get(path, 0.0)
            self.position_sum[path] = self.position_sum.get(path, 0.0) + position
            histogram = self.multiplicity_docs.get(path)
            if histogram is None:
                histogram = self.multiplicity_docs[path] = Counter()
            histogram[doc.multiplicity.get(path, 1)] += 1

    def add_tree(self, root: Element) -> None:
        """Extract one tree's paths and fold them in."""
        self.add(extract_paths(root))

    # -- merging -------------------------------------------------------------

    def update(self, other: "PathAccumulator") -> None:
        """In-place merge of another accumulator (the engine's hot path)."""
        self.document_count += other.document_count
        self.doc_frequency.update(other.doc_frequency)
        for path, value in other.position_sum.items():
            self.position_sum[path] = self.position_sum.get(path, 0.0) + value
        for path, histogram in other.multiplicity_docs.items():
            held = self.multiplicity_docs.get(path)
            if held is None:
                self.multiplicity_docs[path] = Counter(histogram)
            else:
                held.update(histogram)

    def merge(self, other: "PathAccumulator") -> "PathAccumulator":
        """Pure merge: a new accumulator, neither operand mutated."""
        merged = self.copy()
        merged.update(other)
        return merged

    def copy(self) -> "PathAccumulator":
        """An independent deep-enough copy (histograms are duplicated)."""
        return PathAccumulator(
            document_count=self.document_count,
            doc_frequency=Counter(self.doc_frequency),
            position_sum=dict(self.position_sum),
            multiplicity_docs={
                path: Counter(histogram)
                for path, histogram in self.multiplicity_docs.items()
            },
        )

    # -- wire form -----------------------------------------------------------
    #
    # Chunk results cross the engine's process boundary as pickles, and
    # the accumulator dominates their size: every statistic is keyed by a
    # label-path tuple whose labels repeat across thousands of paths.
    # The wire form writes each distinct label once, encodes paths as
    # tuples of small integer indices, and stores each dict as a pair of
    # parallel lists (keys, values) -- cheaper on the wire than per-entry
    # pair tuples or pickled Counter objects.  Dict insertion order is
    # preserved exactly (the encoder walks each dict in order and the
    # decoder rebuilds in the same order) and the three dicts are encoded
    # independently, so a path present in one but absent from another
    # round-trips as exactly that -- missing stays missing, 0.0 stays
    # 0.0.

    def __getstate__(self) -> tuple:
        label_index: dict[str, int] = {}
        labels: list[str] = []
        packed_paths: dict[LabelPath, tuple[int, ...]] = {}

        def pack(path: LabelPath) -> tuple[int, ...]:
            packed = packed_paths.get(path)
            if packed is None:
                indices = []
                for label in path:
                    index = label_index.get(label)
                    if index is None:
                        index = label_index[label] = len(labels)
                        labels.append(label)
                    indices.append(index)
                packed = packed_paths[path] = tuple(indices)
            return packed

        return (
            _WIRE_VERSION,
            self.document_count,
            labels,
            [pack(path) for path in self.doc_frequency],
            list(self.doc_frequency.values()),
            [pack(path) for path in self.position_sum],
            list(self.position_sum.values()),
            [pack(path) for path in self.multiplicity_docs],
            [
                tuple(histogram.items())
                for histogram in self.multiplicity_docs.values()
            ],
        )

    def __setstate__(self, state) -> None:
        if isinstance(state, dict):
            # Pickles from before the wire form carried __dict__ state.
            self.__dict__.update(state)
            return
        version = state[0]
        if version != _WIRE_VERSION:
            raise ValueError(
                f"unsupported PathAccumulator wire version: {version!r}"
            )
        (
            _,
            document_count,
            raw_labels,
            frequency_paths,
            frequency_counts,
            position_paths,
            position_values,
            multiplicity_paths,
            multiplicity_histograms,
        ) = state
        # Interning restores the one-string-object-per-label property
        # extract_paths establishes, so merged accumulators in the parent
        # process don't hold per-chunk duplicate label strings.
        labels = [intern(label) for label in raw_labels]
        paths: dict[tuple[int, ...], LabelPath] = {}

        def unpack(packed: tuple[int, ...]) -> LabelPath:
            path = paths.get(packed)
            if path is None:
                path = paths[packed] = tuple(labels[i] for i in packed)
            return path

        self.document_count = document_count
        self.doc_frequency = Counter(
            dict(zip(map(unpack, frequency_paths), frequency_counts))
        )
        self.position_sum = dict(
            zip(map(unpack, position_paths), position_values)
        )
        self.multiplicity_docs = {
            unpack(packed): Counter(dict(histogram))
            for packed, histogram in zip(
                multiplicity_paths, multiplicity_histograms
            )
        }

    # -- mining statistics (Section 3.2) -------------------------------------

    def support(self, path: LabelPath) -> float:
        """``freq(p, S) / |D|`` in ``[0, 1]``."""
        if self.document_count == 0:
            return 0.0
        return self.doc_frequency[path] / self.document_count

    def support_ratio(self, path: LabelPath) -> float:
        """``support(p) / support(parent(p))``; 1.0 for the root path."""
        if len(path) <= 1:
            return 1.0
        parent_frequency = self.doc_frequency[path[:-1]]
        if parent_frequency == 0:
            return 0.0
        return self.doc_frequency[path] / parent_frequency

    def observed_labels(self) -> set[str]:
        """All labels occurring anywhere in the corpus paths."""
        labels: set[str] = set()
        for path in self.doc_frequency:
            labels.update(path)
        return labels

    def root_labels(self) -> list[str]:
        """Labels observed at the root of some document, sorted."""
        return sorted({path[0] for path in self.doc_frequency if len(path) == 1})

    # -- DTD-derivation statistics (Section 3.3) -----------------------------

    def avg_position(self, path: LabelPath) -> float:
        """Average (over containing documents) of the per-document average
        child position; ``inf`` for never-observed paths so they sort
        last under the ordering rule."""
        frequency = self.doc_frequency[path]
        if frequency == 0:
            return float("inf")
        return self.position_sum.get(path, 0.0) / frequency

    def multiplicity_fraction(
        self, path: LabelPath, *, rep_threshold: int
    ) -> float:
        """``mult(e)``: fraction of path-containing documents realizing the
        path with at least ``rep_threshold`` same-label siblings."""
        containing = self.doc_frequency[path]
        if containing == 0:
            return 0.0
        histogram = self.multiplicity_docs.get(path, Counter())
        repetitive = sum(
            count for value, count in histogram.items() if value >= rep_threshold
        )
        return repetitive / containing

    def presence_fraction(self, path: LabelPath) -> float:
        """Fraction of parent-containing documents that contain ``path``."""
        if len(path) <= 1:
            parent_frequency = self.document_count
        else:
            parent_frequency = self.doc_frequency[path[:-1]]
        if parent_frequency == 0:
            return 0.0
        return self.doc_frequency[path] / parent_frequency

"""The DTD ordering rule (Section 3.3).

"The ordering of the child elements q1,...,qm for p is determined by the
average position an element qi occurs as child of p in the documents
D^p_XML" -- i.e. only documents containing the prefix ``p`` vote, and
they vote with the average child position recorded during path
extraction (the "index structure" of the paper is exactly the
``avg_position`` table of :class:`repro.schema.paths.DocumentPaths`).
"""

from __future__ import annotations

from repro.schema.accumulator import PathAccumulator
from repro.schema.majority import SchemaNode
from repro.schema.paths import DocumentPaths, LabelPath

PathSource = list[DocumentPaths] | PathAccumulator


def average_child_positions(
    documents: PathSource, parent_path: LabelPath, child_labels: list[str]
) -> dict[str, float]:
    """Average (over documents containing the child path) of the average
    child position of each ``child_label`` under ``parent_path``.

    Children never observed in any document (possible only for an empty
    corpus) default to position ``inf`` so they sort last.
    """
    if isinstance(documents, PathAccumulator):
        return {
            label: documents.avg_position(parent_path + (label,))
            for label in child_labels
        }
    sums: dict[str, float] = {label: 0.0 for label in child_labels}
    counts: dict[str, int] = {label: 0 for label in child_labels}
    for doc in documents:
        for label in child_labels:
            child_path = parent_path + (label,)
            position = doc.avg_position.get(child_path)
            if position is not None:
                sums[label] += position
                counts[label] += 1
    return {
        label: (sums[label] / counts[label]) if counts[label] else float("inf")
        for label in child_labels
    }


def order_children(
    documents: PathSource, node: SchemaNode
) -> list[SchemaNode]:
    """The children of a schema node in DTD content-model order.

    Ties on average position break alphabetically for determinism.
    """
    labels = list(node.children)
    positions = average_child_positions(documents, node.path, labels)
    return [
        node.children[label]
        for label in sorted(labels, key=lambda lb: (positions[lb], lb))
    ]


def ordered_labels(
    parent_path: LabelPath,
    labels: list[str],
    *,
    documents: PathSource | None = None,
    index=None,
) -> list[str]:
    """Labels in content-model order, from either statistics source.

    ``index`` (a :class:`repro.schema.index.PathIndex`) answers average
    positions in O(occurrences of the child path) without re-touching
    the documents -- the "efficient computation of an ordering" the
    paper attributes to the index structure.  Exactly one of
    ``documents``/``index`` must be provided.
    """
    if (documents is None) == (index is None):
        raise ValueError("provide exactly one of documents or index")
    if index is not None:
        positions = {
            label: index.avg_position(parent_path + (label,)) for label in labels
        }
    else:
        positions = average_child_positions(documents, parent_path, labels)
    return sorted(labels, key=lambda lb: (positions[lb], lb))

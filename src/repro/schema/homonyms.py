"""Homonym-context analysis (Section 2.2).

"In a document, different objects can be associated with the same
concept.  This typically holds for topic independent concepts such as
date ...  However, the context of the concepts then differs, that is,
they represent homonyms.  Homonyms can play different roles in different
contexts.  For example, in order to detail information about the concept
education, date can be used to chronologically organize this
information, whereas for other concepts, date does not exhibit such a
property."

This module makes those contexts inspectable: for a label, report every
parent context it occurs under (with document frequencies and the child
structure it carries there).  ``DATE`` under ``EDUCATION`` anchoring an
entry vs. ``DATE`` under ``COURSES`` as a bare leaf is exactly the
paper's example, surfaced from the discovered schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.frequent import PathStatistics
from repro.schema.paths import DocumentPaths, LabelPath


@dataclass
class HomonymContext:
    """One context a label occurs in."""

    path: LabelPath  # full path ending in the label
    support: float
    child_labels: set[str] = field(default_factory=set)

    @property
    def parent_label(self) -> str:
        """The immediately enclosing label ('' at the root)."""
        return self.path[-2] if len(self.path) > 1 else ""

    @property
    def is_organizing(self) -> bool:
        """Whether the label carries structure here (has children) --
        the paper's "chronologically organize" role -- or is a leaf."""
        return bool(self.child_labels)


def homonym_contexts(
    documents: list[DocumentPaths], label: str, *, min_support: float = 0.0
) -> list[HomonymContext]:
    """All contexts of ``label`` across the corpus, by falling support."""
    statistics = PathStatistics.from_documents(documents)
    contexts: dict[LabelPath, HomonymContext] = {}
    for path in statistics.doc_frequency:
        if path[-1] != label:
            continue
        support = statistics.support(path)
        if support < min_support:
            continue
        contexts[path] = HomonymContext(path, support)
    # Attach observed child labels per context.
    for path in statistics.doc_frequency:
        if len(path) >= 2 and path[:-1] in contexts:
            contexts[path[:-1]].child_labels.add(path[-1])
    return sorted(contexts.values(), key=lambda c: (-c.support, c.path))


def homonym_labels(
    documents: list[DocumentPaths], *, min_contexts: int = 2
) -> dict[str, int]:
    """Labels occurring under at least ``min_contexts`` distinct parents,
    with their context counts -- the corpus's homonyms."""
    statistics = PathStatistics.from_documents(documents)
    parents: dict[str, set[str]] = {}
    for path in statistics.doc_frequency:
        if len(path) >= 2:
            parents.setdefault(path[-1], set()).add(path[-2])
    return {
        label: len(contexts)
        for label, contexts in sorted(parents.items())
        if len(contexts) >= min_contexts
    }

"""The majority schema: the tree of frequent paths (Section 3.2/3.3).

"The set of frequent paths discovered constitute a majority schema for
the XML documents."  The tree form ``TF`` maps straightforwardly from the
prefix-closed frequent path set; each node carries its path's support so
reports can show how common each structure is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.schema.frequent import FrequentPathSet
from repro.schema.paths import LabelPath


@dataclass
class SchemaNode:
    """One node of a schema tree (majority schema, DataGuide, ...)."""

    label: str
    path: LabelPath
    support: float = 1.0
    children: dict[str, "SchemaNode"] = field(default_factory=dict)

    def child(self, label: str) -> "SchemaNode | None":
        """The child with ``label``, or ``None``."""
        return self.children.get(label)

    def ensure_child(self, label: str, support: float = 1.0) -> "SchemaNode":
        """Get or create the child with ``label``."""
        node = self.children.get(label)
        if node is None:
            node = SchemaNode(label, self.path + (label,), support)
            self.children[label] = node
        return node

    def iter_nodes(self) -> Iterator["SchemaNode"]:
        """This node and all descendants, preorder."""
        yield self
        for child in self.children.values():
            yield from child.iter_nodes()

    def size(self) -> int:
        """Number of nodes in this subtree."""
        return sum(1 for _ in self.iter_nodes())


@dataclass
class MajoritySchema:
    """A schema tree plus the mining context it came from."""

    root: SchemaNode
    frequent: FrequentPathSet

    @classmethod
    def from_frequent_paths(cls, frequent: FrequentPathSet) -> "MajoritySchema":
        """Fold the (prefix-closed) frequent path set into a tree."""
        if not frequent.paths:
            raise ValueError("no frequent paths: thresholds too strict?")
        root_labels = {path[0] for path in frequent.paths}
        if len(root_labels) != 1:
            raise ValueError(f"frequent paths have multiple roots: {root_labels}")
        root_label = next(iter(root_labels))
        root = SchemaNode(root_label, (root_label,), frequent.support((root_label,)))
        # Total order, not just key=len: ``paths`` is a set, and a
        # length-only key would leave equal-length paths in hash order,
        # making schema child order (and DTD declaration order) vary
        # from process to process.
        for path in sorted(frequent.paths, key=lambda p: (len(p), p)):
            node = root
            for label in path[1:]:
                node = node.ensure_child(label, frequent.support(node.path + (label,)))
        return cls(root, frequent)

    def contains_path(self, path: LabelPath) -> bool:
        """Whether ``path`` is part of the schema."""
        return path in self.frequent.paths

    def element_count(self) -> int:
        """Number of element types (nodes) in the schema tree."""
        return self.root.size()

    def paths(self) -> set[LabelPath]:
        """All label paths in the schema."""
        return set(self.frequent.paths)

    def describe(self) -> str:
        """Human-readable indented rendering with supports."""
        lines: list[str] = []

        def render(node: SchemaNode, level: int) -> None:
            lines.append(f"{'  ' * level}{node.label}  (support {node.support:.2f})")
            for child in node.children.values():
                render(child, level + 1)

        render(self.root, 0)
        return "\n".join(lines)

"""Lower-bound schema baseline ([2], Section 1).

The lower-bound schema comprises only structures "that can be found in
all documents" -- the majority schema at ``supThreshold = 1``.  The paper
argues it does not suffice as an integration target; experiment E7
quantifies the information it loses.
"""

from __future__ import annotations

from repro.schema.frequent import FrequentPathSet, PathStatistics
from repro.schema.majority import MajoritySchema
from repro.schema.paths import DocumentPaths, LabelPath


def build_lower_bound_schema(documents: list[DocumentPaths]) -> MajoritySchema:
    """The schema tree of label paths with support exactly 1."""
    statistics = PathStatistics.from_documents(documents)
    total = statistics.document_count
    paths: set[LabelPath] = {
        path
        for path, count in statistics.doc_frequency.items()
        if count == total
    }
    if not paths:
        raise ValueError(
            "no path occurs in every document; the lower-bound schema is empty"
        )
    frequent = FrequentPathSet(
        paths=paths,
        statistics=statistics,
        sup_threshold=1.0,
        ratio_threshold=0.0,
        nodes_explored=len(statistics.doc_frequency),
        nodes_counted=len(statistics.doc_frequency),
    )
    return MajoritySchema.from_frequent_paths(frequent)

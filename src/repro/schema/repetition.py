"""The repetitive-elements rule (Section 3.3).

Because every path in the majority schema is frequent, no element is
optional by default; the remaining question is whether an element occurs
once or repeatedly.  For a prefix ``p = p' . e``::

    rep(T_D, p)  = 1  iff the document realizes p with sibling
                      multiplicity num >= repThreshold
    mult(e)      = |{D : rep(T_D, p) = 1}| / |D^p_XML|

where ``D^p_XML`` are the documents containing ``p``.  ``e`` is rendered
``e+`` when ``mult(e)`` exceeds ``multThreshold`` (0.5 in the paper);
"empirical studies prove the value 3 to be useful" for ``repThreshold``
(also observed by XTRACT [17]).

The same multiplicity bookkeeping supports *optional* elements when a
deployment wants them: :func:`presence_fraction` reports how many
documents containing the parent actually contain the child, and the DTD
deriver can mark low-presence children ``e?``.
"""

from __future__ import annotations

from repro.schema.accumulator import PathAccumulator
from repro.schema.paths import DocumentPaths, LabelPath

DEFAULT_REP_THRESHOLD = 3
DEFAULT_MULT_THRESHOLD = 0.5

# Every corpus-level question below answers from either a materialized
# list of per-document path sets or merged incremental statistics.
PathSource = list[DocumentPaths] | PathAccumulator


def rep(document: DocumentPaths, path: LabelPath, rep_threshold: int) -> int:
    """``rep(T_D, p)``: 1 when the document realizes ``path`` with at
    least ``rep_threshold`` same-label siblings, else 0."""
    return 1 if document.multiplicity.get(path, 0) >= rep_threshold else 0


def multiplicity_fraction(
    documents: PathSource,
    path: LabelPath,
    *,
    rep_threshold: int = DEFAULT_REP_THRESHOLD,
) -> float:
    """``mult(e)``: the fraction of path-containing documents in which
    the path's tail is repetitive."""
    if isinstance(documents, PathAccumulator):
        return documents.multiplicity_fraction(path, rep_threshold=rep_threshold)
    containing = [doc for doc in documents if doc.contains(path)]
    if not containing:
        return 0.0
    repetitive = sum(rep(doc, path, rep_threshold) for doc in containing)
    return repetitive / len(containing)


def is_repetitive(
    documents: PathSource,
    path: LabelPath,
    *,
    rep_threshold: int = DEFAULT_REP_THRESHOLD,
    mult_threshold: float = DEFAULT_MULT_THRESHOLD,
) -> bool:
    """Whether the tail element of ``path`` should be rendered ``e+``."""
    if rep_threshold <= 1:
        raise ValueError("repThreshold must be greater than 1 for e to be repetitive")
    return multiplicity_fraction(
        documents, path, rep_threshold=rep_threshold
    ) > mult_threshold


def presence_fraction(
    documents: PathSource, path: LabelPath
) -> float:
    """Fraction of documents containing the parent that contain ``path``.

    1.0 means the child accompanies its parent in every document; values
    below an application-chosen threshold justify an ``e?`` marker.
    """
    if isinstance(documents, PathAccumulator):
        return documents.presence_fraction(path)
    if len(path) <= 1:
        containing_parent = documents
    else:
        parent = path[:-1]
        containing_parent = [doc for doc in documents if doc.contains(parent)]
    if not containing_parent:
        return 0.0
    containing = sum(1 for doc in containing_parent if doc.contains(path))
    return containing / len(containing_parent)

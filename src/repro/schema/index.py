"""The path index of Section 3.3.

"An efficient computation of an ordering can be supported by an
appropriate index structure on the input XML documents.  That is, for
each path and node, the index contains pointers to the positions in XML
documents that contain that node.  Such an index structure can easily be
built while the set paths is computed for each XML document."

:class:`PathIndex` is that structure: one traversal per document records,
for every label path, pointers to the concrete element nodes realizing
it together with their child positions.  It serves three consumers:

* the ordering rule (average child positions without re-walking trees),
* support computation (document frequency per path),
* repository queries (direct node access by label path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dom.node import Element
from repro.schema.paths import LabelPath


@dataclass(frozen=True)
class IndexEntry:
    """One occurrence of a label path: a node pointer plus position."""

    doc_id: int
    element: Element
    position: int  # 0-based index among the parent's element children


@dataclass
class PathIndex:
    """Inverted index from label paths to node occurrences."""

    entries: dict[LabelPath, list[IndexEntry]] = field(default_factory=dict)
    document_count: int = 0

    @classmethod
    def from_documents(cls, roots: list[Element]) -> "PathIndex":
        """Index a corpus; document ids are positions in ``roots``."""
        index = cls()
        for doc_id, root in enumerate(roots):
            index.add_document(doc_id, root)
        return index

    def add_document(self, doc_id: int, root: Element) -> None:
        """Index one document tree."""
        self.document_count += 1
        root_path: LabelPath = (root.tag,)
        self.entries.setdefault(root_path, []).append(
            IndexEntry(doc_id, root, 0)
        )
        stack: list[tuple[Element, LabelPath]] = [(root, root_path)]
        while stack:
            element, path = stack.pop()
            for position, child in enumerate(element.element_children()):
                child_path = path + (child.tag,)
                self.entries.setdefault(child_path, []).append(
                    IndexEntry(doc_id, child, position)
                )
                stack.append((child, child_path))

    # -- lookups -------------------------------------------------------------

    def elements(self, path: LabelPath) -> list[Element]:
        """All nodes realizing ``path``, across documents."""
        return [entry.element for entry in self.entries.get(path, ())]

    def values(self, path: LabelPath) -> list[str]:
        """The non-empty ``val`` attributes of nodes realizing ``path``."""
        return [
            entry.element.get_val()
            for entry in self.entries.get(path, ())
            if entry.element.get_val()
        ]

    def occurrence_count(self, path: LabelPath) -> int:
        """Total occurrences (node realizations) of ``path``."""
        return len(self.entries.get(path, ()))

    def documents_containing(self, path: LabelPath) -> set[int]:
        """Ids of the documents realizing ``path``."""
        return {entry.doc_id for entry in self.entries.get(path, ())}

    def document_frequency(self, path: LabelPath) -> int:
        """Number of documents realizing ``path``."""
        return len(self.documents_containing(path))

    def support(self, path: LabelPath) -> float:
        """Document frequency normalized by corpus size."""
        if self.document_count == 0:
            return 0.0
        return self.document_frequency(path) / self.document_count

    def avg_position(self, path: LabelPath) -> float:
        """Mean of per-document average child positions of ``path``.

        Matches the ordering rule's statistic: each document first
        averages its own realizations, then documents average equally.
        """
        by_doc: dict[int, list[int]] = {}
        for entry in self.entries.get(path, ()):
            by_doc.setdefault(entry.doc_id, []).append(entry.position)
        if not by_doc:
            return float("inf")
        per_doc = [sum(p) / len(p) for p in by_doc.values()]
        return sum(per_doc) / len(per_doc)

    def paths_with_prefix(self, prefix: LabelPath) -> list[LabelPath]:
        """All indexed paths extending ``prefix`` (the prefix included
        when itself indexed), sorted."""
        return sorted(
            path for path in self.entries if path[: len(prefix)] == prefix
        )

    def child_labels(self, parent_path: LabelPath) -> set[str]:
        """Labels observed directly below ``parent_path``."""
        depth = len(parent_path) + 1
        return {
            path[-1]
            for path in self.entries
            if len(path) == depth and path[:-1] == parent_path
        }

"""General repetitive structures: ``(e1, e2)+`` group patterns.

Section 3.3: "In the above description we do not consider repetitive
structures of more general types, e.g., of the form (e1,e2)*.  The
discovery of such patterns has been discussed in detail in [17] (XTRACT).
We recently included similar computations into our approach."

This module supplies that computation.  Given the child-label sequences
observed under a parent element across the corpus, it detects *tandem
repeats*: a unit of k consecutive labels (k >= 1) repeated m >= 2 times.
A unit that explains enough documents' sequences (``group_threshold``)
is reported as a group pattern, which the DTD deriver can render as
``(e1, e2)+`` instead of ``e1+, e2+``.

The search follows XTRACT's spirit without its full MDL machinery:
candidate units are enumerated from the sequences themselves (bounded
unit length), each candidate is scored by how many documents' sequences
it *covers* (the sequence is, up to a prefix and suffix, an iteration of
the unit), and the best-covering candidate wins.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.dom.node import Element
from repro.schema.paths import LabelPath

DEFAULT_MAX_UNIT = 4
DEFAULT_MIN_REPEATS = 2
DEFAULT_GROUP_THRESHOLD = 0.5


@dataclass(frozen=True)
class GroupPattern:
    """A discovered ``(e1, ..., ek)+`` pattern under one parent path."""

    parent_path: LabelPath
    unit: tuple[str, ...]
    support: float  # fraction of parent-containing docs covered
    avg_repeats: float

    def render(self) -> str:
        """The content-model fragment, e.g. ``(date, degree)+``."""
        return f"({', '.join(label.lower() for label in self.unit)})+"


def child_sequences(root: Element, parent_path: LabelPath) -> list[list[str]]:
    """Child-label sequences of every node realizing ``parent_path``."""
    sequences: list[list[str]] = []
    stack: list[tuple[Element, LabelPath]] = [(root, (root.tag,))]
    while stack:
        element, path = stack.pop()
        if path == parent_path:
            sequences.append([c.tag for c in element.element_children()])
        if len(path) < len(parent_path):
            for child in element.element_children():
                if parent_path[: len(path) + 1] == path + (child.tag,):
                    stack.append((child, path + (child.tag,)))
    return sequences


def repeats_of(sequence: list[str], unit: tuple[str, ...]) -> int:
    """Maximum number of consecutive repetitions of ``unit`` in
    ``sequence`` (anywhere, not necessarily anchored)."""
    if not unit or len(unit) > len(sequence):
        return 0
    k = len(unit)
    best = 0
    for start in range(len(sequence) - k + 1):
        count = 0
        position = start
        while (
            position + k <= len(sequence)
            and tuple(sequence[position : position + k]) == unit
        ):
            count += 1
            position += k
        best = max(best, count)
    return best


def covers(sequence: list[str], unit: tuple[str, ...], *, min_repeats: int) -> bool:
    """Whether ``sequence`` is explained by iterating ``unit``.

    Coverage requires at least ``min_repeats`` consecutive iterations
    whose combined span accounts for all occurrences in the sequence of
    the labels that make up the unit (stray occurrences outside the
    repeat region mean the unit does not really structure the sequence).
    """
    count = repeats_of(sequence, unit)
    if count < min_repeats:
        return False
    unit_labels = set(unit)
    in_unit_occurrences = sum(1 for label in sequence if label in unit_labels)
    return count * len(unit) == in_unit_occurrences


def _candidate_units(
    sequences: list[list[str]], max_unit: int
) -> list[tuple[str, ...]]:
    """Units observed to actually repeat at least twice somewhere."""
    candidates: Counter[tuple[str, ...]] = Counter()
    for sequence in sequences:
        for k in range(1, min(max_unit, len(sequence) // 2) + 1):
            for start in range(len(sequence) - 2 * k + 1):
                unit = tuple(sequence[start : start + k])
                if tuple(sequence[start + k : start + 2 * k]) == unit:
                    if _is_primitive(unit):
                        candidates[unit] += 1
    return [unit for unit, _count in candidates.most_common()]


def _is_primitive(unit: tuple[str, ...]) -> bool:
    """True unless ``unit`` is itself an iteration of a shorter unit
    (('a','b','a','b') reduces to ('a','b'); keep only the short form)."""
    k = len(unit)
    for divisor in range(1, k):
        if k % divisor == 0 and unit == unit[:divisor] * (k // divisor):
            return False
    return True


def discover_group_patterns(
    corpus_roots: list[Element],
    parent_path: LabelPath,
    *,
    max_unit: int = DEFAULT_MAX_UNIT,
    min_repeats: int = DEFAULT_MIN_REPEATS,
    group_threshold: float = DEFAULT_GROUP_THRESHOLD,
) -> list[GroupPattern]:
    """Find ``(e1, ..., ek)+`` patterns under ``parent_path``.

    Returns patterns sorted by (coverage, unit length) descending; the
    first entry, if any, is what the DTD deriver should use.  Unit-length
    1 candidates are excluded (plain ``e+`` already handles them).
    """
    all_sequences = [
        sequence
        for root in corpus_roots
        for sequence in child_sequences(root, parent_path)
    ]
    relevant = [s for s in all_sequences if len(s) >= 2 * 2]  # room for k>=2 twice
    if not all_sequences:
        return []

    patterns: list[GroupPattern] = []
    for unit in _candidate_units(relevant, max_unit):
        if len(unit) < 2:
            continue
        covered = [
            sequence
            for sequence in all_sequences
            if covers(sequence, unit, min_repeats=min_repeats)
        ]
        support = len(covered) / len(all_sequences)
        if support <= group_threshold:
            continue
        avg = sum(repeats_of(sequence, unit) for sequence in covered) / len(covered)
        patterns.append(GroupPattern(parent_path, unit, support, avg))
    patterns.sort(key=lambda p: (p.support, len(p.unit)), reverse=True)
    return patterns


def render_dtd_with_patterns(dtd, patterns: dict[LabelPath, GroupPattern]) -> str:
    """Render a DTD with group patterns substituted into content models.

    For each declaration whose element is the tail of a pattern's parent
    path, the particles that make up the pattern's unit are replaced by
    the grouped form, e.g. ``date+, degree`` becomes ``(date, degree)+``.
    The remaining particles keep their order around the group.
    """
    by_element: dict[str, GroupPattern] = {}
    for parent_path, pattern in patterns.items():
        by_element[parent_path[-1].lower()] = pattern

    lines: list[str] = []
    for line in dtd.render().splitlines():
        name = line.split()[1] if line.startswith("<!ELEMENT") else ""
        pattern = by_element.get(name)
        if pattern is None:
            lines.append(line)
            continue
        element = dtd.elements[name]
        unit_names = {label.lower() for label in pattern.unit}
        pieces: list[str] = []
        group_emitted = False
        for particle in element.particles:
            if particle.name in unit_names:
                if not group_emitted:
                    pieces.append(pattern.render())
                    group_emitted = True
                continue
            pieces.append(particle.render())
        if not group_emitted:
            lines.append(line)
            continue
        inner = ", ".join(pieces)
        body = f"((#PCDATA), {inner})" if element.has_pcdata else f"({inner})"
        lines.append(f"<!ELEMENT {name} {body}>")
    return "\n".join(lines)


def discover_all_group_patterns(
    corpus_roots: list[Element],
    parent_paths: list[LabelPath],
    **options,
) -> dict[LabelPath, GroupPattern]:
    """Best group pattern per parent path (paths without one omitted)."""
    result: dict[LabelPath, GroupPattern] = {}
    for parent_path in parent_paths:
        found = discover_group_patterns(corpus_roots, parent_path, **options)
        if found:
            result[parent_path] = found[0]
    return result

"""Label-path extraction from XML trees (Section 3.2).

Two simplifications relative to [26] are adopted by the paper: paths are
sequences of node *labels* (not node identifiers), and an ordered tree is
reduced to a *set* of root-emanating paths -- "in order for the proposed
schema discovery method not to be too biased towards multiple occurrences
of the same path in only a very few documents".

Alongside the path set, two cheap statistics are recorded per label path
(both fall out of the same traversal, "recording the multiplicity of
child nodes does not cause any computational overhead"):

* the *multiplicity* ``<p, num>`` -- the largest number of same-label
  siblings realizing the path's last step (drives the repetition rule);
* the *average child position* of the path's last element among its
  parent's element children (drives the ordering rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from sys import intern
from typing import Iterable, Iterator

from repro.dom.node import Element

# A root-emanating label path; index 0 is the root's label.
LabelPath = tuple[str, ...]


@dataclass
class DocumentPaths:
    """The path-set representation of one XML document."""

    paths: set[LabelPath] = field(default_factory=set)
    # label path -> max number of same-label siblings realizing its tail
    multiplicity: dict[LabelPath, int] = field(default_factory=dict)
    # label path -> average 0-based position among parent element children
    avg_position: dict[LabelPath, float] = field(default_factory=dict)

    def contains(self, path: LabelPath) -> bool:
        """Whether the document realizes ``path``.

        Path sets are prefix-closed, so membership of a prefix is plain
        set membership.
        """
        return path in self.paths


def extract_paths(root: Element) -> DocumentPaths:
    """Reduce an XML tree to its :class:`DocumentPaths`.

    Runs in one preorder traversal; every node contributes the label path
    from the root to itself, so the resulting set is prefix-closed.

    Labels are interned so every ``LabelPath`` tuple in a process shares
    one string object per distinct label: tag strings are minted per
    :class:`Element`, and without interning a corpus carries millions of
    equal-but-distinct ``"RESUME"``/``"GROUP"`` copies.  Sharing shrinks
    pickled :class:`~repro.runtime.engine.ChunkPayload` accumulators
    (pickle memoizes by object identity) and speeds accumulator merges
    (tuple equality short-circuits on identical elements).
    """
    doc = DocumentPaths()
    root_path: LabelPath = (intern(root.tag),)
    doc.paths.add(root_path)
    doc.multiplicity[root_path] = 1
    doc.avg_position[root_path] = 0.0

    # Running (sum_of_positions, count) per path for averaging --
    # constant space per distinct path instead of a list of floats per
    # realized position.
    position_acc: dict[LabelPath, list[float]] = {}

    stack: list[tuple[Element, LabelPath]] = [(root, root_path)]
    while stack:
        element, path = stack.pop()
        children = element.element_children()
        # Sibling multiplicity per label under this concrete node.
        label_counts: dict[str, int] = {}
        for child in children:
            label_counts[child.tag] = label_counts.get(child.tag, 0) + 1
        for position, child in enumerate(children):
            child_path = path + (intern(child.tag),)
            doc.paths.add(child_path)
            seen = doc.multiplicity.get(child_path, 0)
            doc.multiplicity[child_path] = max(seen, label_counts[child.tag])
            acc = position_acc.get(child_path)
            if acc is None:
                position_acc[child_path] = [float(position), 1.0]
            else:
                acc[0] += float(position)
                acc[1] += 1.0
            stack.append((child, child_path))

    for child_path, (position_sum, count) in position_acc.items():
        doc.avg_position[child_path] = position_sum / count
    return doc


def iter_corpus_paths(roots: Iterable[Element]) -> Iterator[DocumentPaths]:
    """Lazily reduce a corpus of XML documents to path sets.

    The streaming counterpart of :func:`extract_corpus_paths`: trees can
    be discarded as soon as their statistics are folded into a
    :class:`~repro.schema.accumulator.PathAccumulator`, so schema
    discovery never needs the whole converted corpus in memory.
    """
    for root in roots:
        yield extract_paths(root)


def extract_corpus_paths(roots: Iterable[Element]) -> list[DocumentPaths]:
    """Path sets for a corpus of XML documents, materialized."""
    return list(iter_corpus_paths(roots))

"""Label-path extraction from XML trees (Section 3.2).

Two simplifications relative to [26] are adopted by the paper: paths are
sequences of node *labels* (not node identifiers), and an ordered tree is
reduced to a *set* of root-emanating paths -- "in order for the proposed
schema discovery method not to be too biased towards multiple occurrences
of the same path in only a very few documents".

Alongside the path set, two cheap statistics are recorded per label path
(both fall out of the same traversal, "recording the multiplicity of
child nodes does not cause any computational overhead"):

* the *multiplicity* ``<p, num>`` -- the largest number of same-label
  siblings realizing the path's last step (drives the repetition rule);
* the *average child position* of the path's last element among its
  parent's element children (drives the ordering rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.dom.node import Element

# A root-emanating label path; index 0 is the root's label.
LabelPath = tuple[str, ...]


@dataclass
class DocumentPaths:
    """The path-set representation of one XML document."""

    paths: set[LabelPath] = field(default_factory=set)
    # label path -> max number of same-label siblings realizing its tail
    multiplicity: dict[LabelPath, int] = field(default_factory=dict)
    # label path -> average 0-based position among parent element children
    avg_position: dict[LabelPath, float] = field(default_factory=dict)

    def contains(self, path: LabelPath) -> bool:
        """Whether the document realizes ``path``.

        Path sets are prefix-closed, so membership of a prefix is plain
        set membership.
        """
        return path in self.paths


def extract_paths(root: Element) -> DocumentPaths:
    """Reduce an XML tree to its :class:`DocumentPaths`.

    Runs in one preorder traversal; every node contributes the label path
    from the root to itself, so the resulting set is prefix-closed.
    """
    doc = DocumentPaths()
    root_path: LabelPath = (root.tag,)
    doc.paths.add(root_path)
    doc.multiplicity[root_path] = 1
    doc.avg_position[root_path] = 0.0

    # positions accumulates (sum_of_positions, count) for averaging.
    position_acc: dict[LabelPath, list[float]] = {}

    stack: list[tuple[Element, LabelPath]] = [(root, root_path)]
    while stack:
        element, path = stack.pop()
        children = element.element_children()
        # Sibling multiplicity per label under this concrete node.
        label_counts: dict[str, int] = {}
        for child in children:
            label_counts[child.tag] = label_counts.get(child.tag, 0) + 1
        for position, child in enumerate(children):
            child_path = path + (child.tag,)
            doc.paths.add(child_path)
            seen = doc.multiplicity.get(child_path, 0)
            doc.multiplicity[child_path] = max(seen, label_counts[child.tag])
            position_acc.setdefault(child_path, []).append(float(position))
            stack.append((child, child_path))

    for child_path, positions in position_acc.items():
        doc.avg_position[child_path] = sum(positions) / len(positions)
    return doc


def iter_corpus_paths(roots: Iterable[Element]) -> Iterator[DocumentPaths]:
    """Lazily reduce a corpus of XML documents to path sets.

    The streaming counterpart of :func:`extract_corpus_paths`: trees can
    be discarded as soon as their statistics are folded into a
    :class:`~repro.schema.accumulator.PathAccumulator`, so schema
    discovery never needs the whole converted corpus in memory.
    """
    for root in roots:
        yield extract_paths(root)


def extract_corpus_paths(roots: Iterable[Element]) -> list[DocumentPaths]:
    """Path sets for a corpus of XML documents, materialized."""
    return list(iter_corpus_paths(roots))

"""Online schema evolution: durable incremental discovery.

The paper's Section-3 discovery is a batch pass over a corpus; this
module turns it into a continuously learning system.
:class:`~repro.schema.accumulator.PathAccumulator` is a mergeable monoid
with a compact pickle wire form, so the whole discovery state of a
corpus fits in one small object -- the missing pieces are *durability*
and *incremental re-derivation*:

* :class:`AccumulatorCheckpoint` -- crash-safe persistence of
  accumulator state as a **snapshot** file plus an **append-only delta
  log** (the snapshot+delta pattern DataGuides use for incremental
  structure summaries).  Every frame is checksummed and sequence
  numbered; snapshots commit via write-temp + fsync + atomic rename;
  deltas append with fsync.  A crash mid-append leaves a torn tail that
  load ignores and the next append truncates; a crash between snapshot
  commit and log truncation cannot double-count because the snapshot
  records the sequence watermark it already includes.  The log is
  compacted into the snapshot once the deltas outweigh it.

* :class:`EvolvingSchema` -- the online discovery driver: fold the
  accumulator of newly converted documents in (no corpus re-scan),
  re-run frequent-path mining + DTD derivation over the merged
  statistics, and bump the schema version **only when the derived
  schema actually changed** (:func:`repro.schema.diff.diff_path_supports`
  reports a path-set change, or the rendered DTD text moved -- a
  multiplicity flip is a real change even when the path set is stable,
  because stored documents must re-conform).

Both halves are deliberately independent: a checkpoint directory can be
used on its own (``convert-corpus --checkpoint-dir``) for sharded
merge-later workflows, and :class:`EvolvingSchema` embeds one inside
its state directory.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.schema.accumulator import PathAccumulator
from repro.schema.diff import SchemaDiff, diff_path_supports
from repro.schema.dtd import DTD, derive_dtd
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema
from repro.schema.paths import LabelPath

if TYPE_CHECKING:  # pragma: no cover
    from repro.concepts.knowledge import KnowledgeBase
    from repro.obs.metrics import MetricsRegistry

# -- file names inside a checkpoint / evolution state directory ---------------

SNAPSHOT_NAME = "snapshot.bin"
DELTA_LOG_NAME = "deltas.log"
CHECKPOINT_META_NAME = "checkpoint.json"
STATE_NAME = "state.json"
CURRENT_DTD_NAME = "current.dtd"
DTD_DIR_NAME = "dtds"

STATE_FORMAT = "repro-evolution/1"

# -- metric names (registered only when a registry is supplied) ---------------

EVOLUTION_FOLDS = "repro_evolution_folds_total"
EVOLUTION_DOCUMENTS = "repro_evolution_documents_total"
VERSION_BUMPS = "repro_schema_version_bumps_total"
SCHEMA_VERSION = "repro_schema_version"

# -- frame format -------------------------------------------------------------
#
#   frame := magic(4) | sequence(>Q) | length(>Q) | crc32(>I) | payload
#
# ``payload`` is the accumulator pickled through its compact wire form.
# The same frame shape is used for the snapshot file (exactly one frame,
# whose sequence is the watermark: the highest delta sequence the
# snapshot already includes) and for the delta log (one frame per fold,
# sequence strictly increasing).

_MAGIC = b"RPCK"
_HEADER = struct.Struct(">4sQQI")


class CheckpointCorruption(ValueError):
    """A checkpoint file is damaged beyond what a crash can explain.

    Torn *tails* (a crash mid-append) are expected and recovered from
    silently; a bad checksum followed by further valid data, or a
    mangled snapshot, is real corruption and refuses to load.
    """


def _encode_frame(sequence: int, accumulator: PathAccumulator) -> bytes:
    payload = pickle.dumps(accumulator, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        _HEADER.pack(_MAGIC, sequence, len(payload), zlib.crc32(payload))
        + payload
    )


@dataclass
class _Frame:
    sequence: int
    accumulator: PathAccumulator
    end_offset: int


def _scan_frames(data: bytes, *, where: str) -> tuple[list[_Frame], int]:
    """Parse concatenated frames; returns (frames, valid_byte_count).

    An incomplete trailing frame (short header or short payload) is a
    crash artifact: scanning stops and the valid byte count excludes it,
    so the next append can truncate it away.  A checksum or magic
    mismatch on a *complete* frame is :class:`CheckpointCorruption`.
    """
    frames: list[_Frame] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            break  # torn tail: header itself is incomplete
        magic, sequence, length, crc = _HEADER.unpack_from(data, offset)
        if magic != _MAGIC:
            raise CheckpointCorruption(
                f"{where}: bad frame magic at byte {offset}"
            )
        payload_start = offset + _HEADER.size
        payload_end = payload_start + length
        if payload_end > total:
            break  # torn tail: payload was still being written
        payload = data[payload_start:payload_end]
        if zlib.crc32(payload) != crc:
            raise CheckpointCorruption(
                f"{where}: checksum mismatch in frame at byte {offset}"
            )
        accumulator = pickle.loads(payload)
        if not isinstance(accumulator, PathAccumulator):
            raise CheckpointCorruption(
                f"{where}: frame at byte {offset} is not an accumulator"
            )
        frames.append(_Frame(sequence, accumulator, payload_end))
        offset = payload_end
    return frames, offset


def _fsync_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` and flush it to stable storage."""
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (rename durability); best-effort on
    filesystems that reject directory fsync."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _atomic_replace(target: Path, data: bytes) -> None:
    """Commit ``data`` at ``target`` via write-temp + fsync + rename."""
    temp = target.with_name(target.name + ".tmp")
    _fsync_write(temp, data)
    os.replace(temp, target)
    _fsync_dir(target.parent)


@dataclass
class CheckpointInfo:
    """What a checkpoint directory currently holds."""

    sequence: int
    document_count: int
    snapshot_documents: int
    snapshot_bytes: int
    delta_frames: int
    delta_bytes: int

    def rows(self) -> list[list[str]]:
        """Report-table rows (CLI display)."""
        return [
            ["documents", str(self.document_count)],
            ["sequence", str(self.sequence)],
            ["snapshot documents", str(self.snapshot_documents)],
            ["snapshot bytes", str(self.snapshot_bytes)],
            ["delta frames", str(self.delta_frames)],
            ["delta bytes", str(self.delta_bytes)],
        ]


class AccumulatorCheckpoint:
    """Durable snapshot + append-only delta log for an accumulator.

    ``compaction_ratio`` controls when :meth:`maybe_compact` folds the
    log into the snapshot: once ``delta_bytes >= ratio * snapshot_bytes``
    (default 1.0 -- "deltas outweigh the snapshot").
    """

    def __init__(
        self, directory: str | Path, *, compaction_ratio: float = 1.0
    ) -> None:
        self.directory = Path(directory)
        self.compaction_ratio = compaction_ratio
        self._live: PathAccumulator | None = None
        self._sequence = 0  # highest sequence on disk (snapshot or delta)
        self._snapshot_documents = 0

    # -- paths ---------------------------------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_NAME

    @property
    def delta_log_path(self) -> Path:
        return self.directory / DELTA_LOG_NAME

    def exists(self) -> bool:
        """True when the directory holds any checkpoint state."""
        return self.snapshot_path.exists() or self.delta_log_path.exists()

    # -- loading -------------------------------------------------------------

    def load(self) -> PathAccumulator:
        """Restore the accumulated state: snapshot + undigested deltas.

        The result is cached as the live accumulator that subsequent
        :meth:`append_delta` calls keep up to date, so repeated loads
        don't re-read the directory.
        """
        if self._live is not None:
            return self._live
        accumulator = PathAccumulator()
        watermark = 0
        if self.snapshot_path.exists():
            frames, valid = _scan_frames(
                self.snapshot_path.read_bytes(), where=str(self.snapshot_path)
            )
            if not frames:
                raise CheckpointCorruption(
                    f"{self.snapshot_path}: snapshot holds no complete frame"
                )
            snapshot = frames[0]
            watermark = snapshot.sequence
            accumulator = snapshot.accumulator
        self._snapshot_documents = accumulator.document_count
        self._sequence = watermark
        if self.delta_log_path.exists():
            frames, valid = _scan_frames(
                self.delta_log_path.read_bytes(), where=str(self.delta_log_path)
            )
            for frame in frames:
                # Frames at or below the watermark are already folded
                # into the snapshot (a crash interrupted compaction
                # between snapshot commit and log truncation).
                if frame.sequence > watermark:
                    accumulator.update(frame.accumulator)
                    self._sequence = frame.sequence
        self._live = accumulator
        return accumulator

    # -- writing -------------------------------------------------------------

    def commit_snapshot(
        self, accumulator: PathAccumulator, *, sequence: int | None = None
    ) -> None:
        """Atomically replace the snapshot with ``accumulator``.

        After the rename commits, the delta log is truncated; if the
        process dies in between, load skips the stale frames via the
        snapshot's sequence watermark, so the truncation is safe to run
        lazily at any later point.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if sequence is None:
            sequence = self._sequence
        _atomic_replace(self.snapshot_path, _encode_frame(sequence, accumulator))
        _fsync_write(self.delta_log_path, b"")
        self._live = accumulator
        self._sequence = sequence
        self._snapshot_documents = accumulator.document_count
        self._write_meta()

    def append_delta(self, delta: PathAccumulator) -> int:
        """Durably append one delta; returns its sequence number.

        Any torn tail left by an earlier crash is truncated away first
        (load already ignores it, but appending after it would orphan
        the new frame).
        """
        accumulated = self.load()  # establishes _sequence and truncation point
        self.directory.mkdir(parents=True, exist_ok=True)
        valid_bytes = 0
        if self.delta_log_path.exists():
            _, valid_bytes = _scan_frames(
                self.delta_log_path.read_bytes(), where=str(self.delta_log_path)
            )
        self._sequence += 1
        frame = _encode_frame(self._sequence, delta)
        with open(self.delta_log_path, "ab") as handle:
            if handle.tell() > valid_bytes:
                handle.truncate(valid_bytes)
                handle.seek(valid_bytes)
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        if accumulated is not delta:
            accumulated.update(delta)
        self._write_meta()
        return self._sequence

    def maybe_compact(self) -> bool:
        """Fold the delta log into the snapshot when it has outgrown it.

        Returns True when a compaction ran.
        """
        info = self.info()
        if info.delta_frames == 0:
            return False
        threshold = self.compaction_ratio * max(info.snapshot_bytes, 1)
        if info.delta_bytes < threshold:
            return False
        self.commit_snapshot(self.load(), sequence=self._sequence)
        return True

    # -- inspection ----------------------------------------------------------

    def info(self) -> CheckpointInfo:
        """Sizes and counts of the on-disk state (live state loaded)."""
        accumulated = self.load()
        snapshot_bytes = (
            self.snapshot_path.stat().st_size if self.snapshot_path.exists() else 0
        )
        delta_frames = 0
        delta_bytes = 0
        if self.delta_log_path.exists():
            frames, valid = _scan_frames(
                self.delta_log_path.read_bytes(), where=str(self.delta_log_path)
            )
            delta_frames = sum(1 for f in frames if f.sequence > 0)
            delta_bytes = valid
        return CheckpointInfo(
            sequence=self._sequence,
            document_count=accumulated.document_count,
            snapshot_documents=self._snapshot_documents,
            snapshot_bytes=snapshot_bytes,
            delta_frames=delta_frames,
            delta_bytes=delta_bytes,
        )

    def _write_meta(self) -> None:
        """Informational sidecar (never load-bearing for recovery)."""
        meta = {
            "format": "repro-accumulator-checkpoint/1",
            "sequence": self._sequence,
            "documents": (
                self._live.document_count if self._live is not None else 0
            ),
        }
        _atomic_replace(
            self.directory / CHECKPOINT_META_NAME,
            (json.dumps(meta, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )


# -- the online discovery driver ----------------------------------------------


@dataclass
class FoldOutcome:
    """What one :meth:`EvolvingSchema.fold` did."""

    documents_folded: int
    total_documents: int
    version: int
    bumped: bool
    derived: bool
    diff: SchemaDiff | None = None
    dtd: DTD | None = None
    compacted: bool = False

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if not self.derived:
            return (
                f"folded {self.documents_folded} documents "
                f"({self.total_documents} total); no schema derivable yet"
            )
        verb = (
            f"version bumped to {self.version}"
            if self.bumped
            else f"version unchanged at {self.version}"
        )
        delta = f" ({self.diff.summary()})" if self.diff is not None else ""
        return (
            f"folded {self.documents_folded} documents "
            f"({self.total_documents} total); {verb}{delta}"
        )


class EvolvingSchema:
    """Durable online schema discovery over an unbounded stream.

    A state directory holds an :class:`AccumulatorCheckpoint`, the
    current schema version with its rendered DTD (``current.dtd`` plus
    one ``dtds/vNNNN.dtd`` per version for audit/rollback), and the
    mining thresholds, so folds from separate processes continue one
    coherent evolution.  Thresholds are fixed at ``init`` time and
    re-read from the state file afterwards -- changing them would make
    version bumps meaningless.

    ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`) gets
    fold/document/version-bump counters and a schema-version gauge.
    """

    def __init__(
        self,
        directory: str | Path,
        kb: "KnowledgeBase",
        *,
        sup_threshold: float = 0.4,
        ratio_threshold: float = 0.0,
        optional_threshold: float | None = None,
        compaction_ratio: float = 1.0,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.directory = Path(directory)
        self.kb = kb
        self.registry = registry
        self.checkpoint = AccumulatorCheckpoint(
            self.directory, compaction_ratio=compaction_ratio
        )
        self.version = 0
        self.sup_threshold = sup_threshold
        self.ratio_threshold = ratio_threshold
        self.optional_threshold = optional_threshold
        self._dtd_text = ""
        self._root_name = ""
        self._schema_supports: dict[LabelPath, float] = {}
        self._history: list[dict] = []
        if self.state_path.exists():
            self._load_state()

    # -- state file ----------------------------------------------------------

    @property
    def state_path(self) -> Path:
        return self.directory / STATE_NAME

    @property
    def current_dtd_path(self) -> Path:
        return self.directory / CURRENT_DTD_NAME

    def exists(self) -> bool:
        return self.state_path.exists()

    def _load_state(self) -> None:
        state = json.loads(self.state_path.read_text(encoding="utf-8"))
        if state.get("format") != STATE_FORMAT:
            raise ValueError(
                f"unrecognized evolution state format in {self.state_path}"
            )
        self.version = state["version"]
        thresholds = state["thresholds"]
        self.sup_threshold = thresholds["sup"]
        self.ratio_threshold = thresholds["ratio"]
        self.optional_threshold = thresholds["optional"]
        self._dtd_text = state.get("dtd", "")
        self._root_name = state.get("root_name", "")
        self._schema_supports = {
            tuple(entry[:-1]): entry[-1]
            for entry in state.get("schema_paths", [])
        }
        self._history = state.get("history", [])

    def save_state(self) -> None:
        """Atomically persist version, thresholds, schema, and history."""
        state = {
            "format": STATE_FORMAT,
            "version": self.version,
            "thresholds": {
                "sup": self.sup_threshold,
                "ratio": self.ratio_threshold,
                "optional": self.optional_threshold,
            },
            "dtd": self._dtd_text,
            "root_name": self._root_name,
            "schema_paths": [
                [*path, support]
                for path, support in sorted(self._schema_supports.items())
            ],
            "history": self._history,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        _atomic_replace(
            self.state_path,
            (json.dumps(state, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
        if self._dtd_text:
            _atomic_replace(
                self.current_dtd_path, (self._dtd_text + "\n").encode("utf-8")
            )

    # -- current schema ------------------------------------------------------

    @property
    def dtd(self) -> DTD | None:
        """The current version's DTD (None before the first derivation)."""
        if not self._dtd_text:
            return None
        return DTD.parse(self._dtd_text, root_name=self._root_name or None)

    @property
    def dtd_text(self) -> str:
        return self._dtd_text

    @property
    def history(self) -> list[dict]:
        """One record per version bump (oldest first)."""
        return list(self._history)

    def total_documents(self) -> int:
        return self.checkpoint.load().document_count

    def version_dtd_path(self, version: int) -> Path:
        return self.directory / DTD_DIR_NAME / f"v{version:04d}.dtd"

    # -- folding -------------------------------------------------------------

    def fold(self, delta: PathAccumulator) -> FoldOutcome:
        """Fold newly converted documents' statistics in and re-derive.

        The delta is durably appended *before* re-derivation, so a crash
        between the two leaves the statistics safe and the next fold
        simply re-derives over them.  The schema version bumps only when
        the derived schema really changed: the frequent path set moved
        (``diff.is_identical`` is false) or the rendered DTD text
        differs (repetition/optionality flips must re-conform stored
        documents even when the path set is stable).
        """
        self.checkpoint.append_delta(delta)
        accumulated = self.checkpoint.load()
        outcome = FoldOutcome(
            documents_folded=delta.document_count,
            total_documents=accumulated.document_count,
            version=self.version,
            bumped=False,
            derived=False,
        )
        derived = self._derive(accumulated)
        if derived is not None:
            schema, dtd = derived
            outcome.derived = True
            outcome.dtd = dtd
            new_supports = {
                path: schema.frequent.support(path) for path in schema.paths()
            }
            diff = diff_path_supports(self._schema_supports, new_supports)
            outcome.diff = diff
            dtd_text = dtd.render()
            if not self._dtd_text or not diff.is_identical or dtd_text != self._dtd_text:
                self.version += 1
                self._dtd_text = dtd_text
                self._root_name = dtd.root_name
                self._schema_supports = new_supports
                self._history.append(
                    {
                        "version": self.version,
                        "documents": accumulated.document_count,
                        "paths_added": len(diff.added),
                        "paths_removed": len(diff.removed),
                        "summary": diff.summary(),
                    }
                )
                version_path = self.version_dtd_path(self.version)
                version_path.parent.mkdir(parents=True, exist_ok=True)
                _atomic_replace(version_path, (dtd_text + "\n").encode("utf-8"))
                outcome.bumped = True
            outcome.version = self.version
        outcome.compacted = self.checkpoint.maybe_compact()
        self.save_state()
        self._record_metrics(outcome)
        return outcome

    def _derive(
        self, accumulated: PathAccumulator
    ) -> tuple[MajoritySchema, DTD] | None:
        """Mining + DTD derivation over the merged statistics; ``None``
        while nothing clears the thresholds (e.g. an empty stream)."""
        if accumulated.document_count == 0:
            return None
        frequent = mine_frequent_paths(
            accumulated,
            sup_threshold=self.sup_threshold,
            ratio_threshold=self.ratio_threshold,
            constraints=self.kb.constraints,
            candidate_labels=self.kb.concept_tags(),
        )
        if not frequent.paths:
            return None
        schema = MajoritySchema.from_frequent_paths(frequent)
        dtd = derive_dtd(
            schema, accumulated, optional_threshold=self.optional_threshold
        )
        return schema, dtd

    def _record_metrics(self, outcome: FoldOutcome) -> None:
        if self.registry is None:
            return
        self.registry.counter(EVOLUTION_FOLDS).inc()
        self.registry.counter(EVOLUTION_DOCUMENTS).inc(outcome.documents_folded)
        if outcome.bumped:
            self.registry.counter(VERSION_BUMPS).inc()
        self.registry.gauge(SCHEMA_VERSION, merge="max").set(self.version)

    # -- reporting -----------------------------------------------------------

    def status_rows(self) -> list[list[str]]:
        """Report-table rows for ``repro-web evolve status``."""
        info = self.checkpoint.info()
        return [
            ["schema version", str(self.version)],
            ["thresholds", (
                f"sup={self.sup_threshold} ratio={self.ratio_threshold} "
                f"optional={self.optional_threshold}"
            )],
            ["version bumps", str(len(self._history))],
            *info.rows(),
        ]

"""Majority-schema discovery and DTD derivation (Section 3).

* :mod:`repro.schema.paths` -- reduce XML trees to root-emanating label
  paths with sibling-multiplicity and child-position bookkeeping.
* :mod:`repro.schema.accumulator` -- incremental, mergeable path
  statistics so discovery can stream over corpus partitions.
* :mod:`repro.schema.frequent` -- mine frequent paths under the
  ``support``/``supportRatio`` thresholds, with constraint pruning.
* :mod:`repro.schema.majority` -- the majority schema tree.
* :mod:`repro.schema.ordering` -- the DTD ordering rule.
* :mod:`repro.schema.repetition` -- the repetitive-elements rule.
* :mod:`repro.schema.dtd` -- the DTD model and its derivation/rendering.
* :mod:`repro.schema.dataguide` / :mod:`repro.schema.lowerbound` -- the
  upper/lower-bound baselines the paper positions itself against.
* :mod:`repro.schema.unify` -- unification of similar schema components
  (the optional step deferred to [13]).
* :mod:`repro.schema.evolution` -- online schema evolution: durable
  accumulator checkpoints (snapshot + append-only delta log) and the
  :class:`EvolvingSchema` driver that folds new documents and bumps the
  schema version only on real change.
"""

from repro.schema.accumulator import PathAccumulator
from repro.schema.evolution import (
    AccumulatorCheckpoint,
    CheckpointCorruption,
    CheckpointInfo,
    EvolvingSchema,
    FoldOutcome,
)
from repro.schema.dataguide import build_dataguide
from repro.schema.dtd import DTD, DTDElement, derive_dtd
from repro.schema.diff import diff_schemas, schema_stability
from repro.schema.frequent import FrequentPathSet, PathStatistics, mine_frequent_paths
from repro.schema.homonyms import homonym_contexts, homonym_labels
from repro.schema.index import PathIndex
from repro.schema.lowerbound import build_lower_bound_schema
from repro.schema.majority import MajoritySchema, SchemaNode
from repro.schema.paths import (
    DocumentPaths,
    LabelPath,
    extract_corpus_paths,
    extract_paths,
    iter_corpus_paths,
)
from repro.schema.patterns import GroupPattern, discover_group_patterns
from repro.schema.unify import unify_schema

__all__ = [
    "LabelPath",
    "DocumentPaths",
    "extract_paths",
    "extract_corpus_paths",
    "iter_corpus_paths",
    "PathAccumulator",
    "AccumulatorCheckpoint",
    "CheckpointCorruption",
    "CheckpointInfo",
    "EvolvingSchema",
    "FoldOutcome",
    "PathStatistics",
    "FrequentPathSet",
    "mine_frequent_paths",
    "MajoritySchema",
    "SchemaNode",
    "DTD",
    "DTDElement",
    "derive_dtd",
    "build_dataguide",
    "build_lower_bound_schema",
    "unify_schema",
    "PathIndex",
    "GroupPattern",
    "discover_group_patterns",
    "diff_schemas",
    "schema_stability",
    "homonym_contexts",
    "homonym_labels",
]

"""Schema comparison and drift measurement.

The paper's Introduction motivates automatic approaches with the
fragility of manual wrappers: "the format of the data may change over
time.  Every change of format would require a new handcrafted wrapper."
A majority schema, by contrast, can simply be re-discovered -- and this
module quantifies how much it moved:

* :func:`diff_schemas` -- structural delta between two majority schemas
  (paths added, removed, and support drift on shared paths).
* :func:`schema_stability` -- a similarity score in ``[0, 1]`` combining
  path overlap and support agreement; re-discovering over disjoint
  samples of the same corpus should score near 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.schema.majority import MajoritySchema
from repro.schema.paths import LabelPath


@dataclass
class SchemaDiff:
    """Structural and statistical delta between two schemas."""

    added: set[LabelPath] = field(default_factory=set)
    removed: set[LabelPath] = field(default_factory=set)
    common: set[LabelPath] = field(default_factory=set)
    # path -> (old support, new support) where they differ materially
    support_drift: dict[LabelPath, tuple[float, float]] = field(
        default_factory=dict
    )

    @property
    def is_identical(self) -> bool:
        """True when no path was added or removed."""
        return not self.added and not self.removed

    @property
    def path_jaccard(self) -> float:
        """Jaccard similarity of the two path sets."""
        union = len(self.added) + len(self.removed) + len(self.common)
        return len(self.common) / union if union else 1.0

    def summary(self) -> str:
        """One-line human-readable delta."""
        return (
            f"+{len(self.added)} paths, -{len(self.removed)} paths, "
            f"{len(self.common)} shared "
            f"({len(self.support_drift)} with support drift)"
        )


def diff_path_supports(
    old: Mapping[LabelPath, float],
    new: Mapping[LabelPath, float],
    *,
    drift_threshold: float = 0.1,
) -> SchemaDiff:
    """Compare two ``path -> support`` mappings.

    The mapping form is what persistent consumers hold: the evolution
    state file (:mod:`repro.schema.evolution`) stores each version's
    paths and supports rather than a live :class:`MajoritySchema`, so
    the same differ must work across process restarts.
    """
    old_paths = set(old)
    new_paths = set(new)
    diff = SchemaDiff(
        added=new_paths - old_paths,
        removed=old_paths - new_paths,
        common=old_paths & new_paths,
    )
    for path in diff.common:
        before = old[path]
        after = new[path]
        if abs(before - after) >= drift_threshold:
            diff.support_drift[path] = (before, after)
    return diff


def diff_schemas(
    old: MajoritySchema,
    new: MajoritySchema,
    *,
    drift_threshold: float = 0.1,
) -> SchemaDiff:
    """Compare two majority schemas.

    ``drift_threshold`` is the minimum absolute support change on a
    shared path to be reported as drift.
    """
    return diff_path_supports(
        {path: old.frequent.support(path) for path in old.paths()},
        {path: new.frequent.support(path) for path in new.paths()},
        drift_threshold=drift_threshold,
    )


def schema_stability(old: MajoritySchema, new: MajoritySchema) -> float:
    """Similarity in ``[0, 1]``: path overlap weighted by support
    agreement on the shared paths.

    1.0 means identical path sets with identical supports; independent
    samples of one corpus should land close to 1, while a corpus whose
    authors changed format drifts toward 0.
    """
    diff = diff_schemas(old, new, drift_threshold=0.0)
    if not diff.common:
        return 0.0
    agreement = sum(
        1.0 - abs(old.frequent.support(p) - new.frequent.support(p))
        for p in diff.common
    ) / len(diff.common)
    return diff.path_jaccard * agreement

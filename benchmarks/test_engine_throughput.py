"""Engine throughput: serial reference vs the parallel corpus engine.

Not a paper experiment -- the engineering number behind the ROADMAP's
"as fast as the hardware allows": docs/sec of the serial
``convert_many`` path vs a 4-worker :class:`CorpusEngine` on a 200+
document corpus, with the differential guarantee (identical XML bytes)
re-checked on the way.  The speedup assertion only applies on multi-core
hardware; on a single core the engine's value is bounded memory, not
speed, so only equivalence is asserted there.
"""

from __future__ import annotations

import os
import time

from repro.corpus.generator import ResumeCorpusGenerator
from repro.evaluation.report import format_table
from repro.runtime.engine import CorpusEngine, EngineConfig

CORPUS_SIZE = 200
WORKERS = 4


def test_engine_throughput_serial_vs_parallel(benchmark, kb, converter, capsys):
    html = ResumeCorpusGenerator(seed=1966).generate_html(CORPUS_SIZE)

    started = time.perf_counter()
    serial_results = converter.convert_many(html)
    serial_seconds = time.perf_counter() - started
    serial_xml = [result.to_xml() for result in serial_results]
    serial_dps = CORPUS_SIZE / serial_seconds

    engine = CorpusEngine(
        kb, engine_config=EngineConfig(max_workers=WORKERS, chunk_size=16)
    )
    result = benchmark.pedantic(
        lambda: engine.convert_corpus(html), rounds=1, iterations=1
    )
    parallel_dps = result.stats.docs_per_second

    with capsys.disabled():
        print()
        print(
            format_table(
                ["path", "seconds", "docs/sec"],
                [
                    ["serial convert_many", f"{serial_seconds:.2f}",
                     f"{serial_dps:.1f}"],
                    [f"engine ({WORKERS} workers)",
                     f"{result.stats.wall_seconds:.2f}",
                     f"{parallel_dps:.1f}"],
                ],
                title=f"[engine] {CORPUS_SIZE}-doc corpus throughput "
                f"({os.cpu_count()} CPUs)",
            )
        )
        print()
        print(
            format_table(
                ["rule", "seconds", "share"],
                result.stats.rule_rows(),
                title="engine per-rule time (summed over workers)",
            )
        )

    # Differential guarantee holds at benchmark scale too.
    assert result.xml_documents == serial_xml
    assert result.stats.documents == CORPUS_SIZE
    assert parallel_dps > 0 and serial_dps > 0

    cpus = os.cpu_count() or 1
    if cpus >= 2:
        # On multi-core hardware the pool must beat the serial path
        # (a loose bar: pool + pickling overhead eats into the ideal
        # cpus-times speedup, but it must at least win).
        assert parallel_dps > serial_dps, (
            f"parallel engine slower than serial on {cpus} CPUs: "
            f"{parallel_dps:.1f} vs {serial_dps:.1f} docs/sec"
        )

"""Engine throughput: serial reference vs the parallel corpus engine.

Not a paper experiment -- the engineering number behind the ROADMAP's
"as fast as the hardware allows": docs/sec of the serial
``convert_many`` path vs a 4-worker :class:`CorpusEngine` on a 200+
document corpus, with the differential guarantee (identical XML bytes)
re-checked on the way.  The speedup assertion only applies on multi-core
hardware; on a single core the engine's value is bounded memory, not
speed, so only equivalence is asserted there.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.corpus.generator import ResumeCorpusGenerator
from repro.evaluation.report import format_table
from repro.runtime.engine import CorpusEngine, EngineConfig

CORPUS_SIZE = 200
WORKERS = 4
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

# Scaling gate: on multi-core hardware, 4 workers must move at least as
# many docs/sec as 1 worker (ratio >= 1.0) -- anything less means the
# pool is buying coordination overhead, not throughput.  On a single
# core the pool cannot win by construction, so the gate only demands
# the overhead stays bounded.
MIN_SCALE_RATIO_MULTI_CORE = 1.0
MIN_SCALE_RATIO_SINGLE_CORE = 0.8


def test_engine_throughput_serial_vs_parallel(benchmark, kb, converter, capsys):
    html = ResumeCorpusGenerator(seed=1966).generate_html(CORPUS_SIZE)

    started = time.perf_counter()
    serial_results = converter.convert_many(html)
    serial_seconds = time.perf_counter() - started
    serial_xml = [result.to_xml() for result in serial_results]
    serial_dps = CORPUS_SIZE / serial_seconds

    engine = CorpusEngine(
        kb, engine_config=EngineConfig(max_workers=WORKERS, chunk_size=16)
    )
    result = benchmark.pedantic(
        lambda: engine.convert_corpus(html), rounds=1, iterations=1
    )
    parallel_dps = result.stats.docs_per_second

    with capsys.disabled():
        print()
        print(
            format_table(
                ["path", "seconds", "docs/sec"],
                [
                    ["serial convert_many", f"{serial_seconds:.2f}",
                     f"{serial_dps:.1f}"],
                    [f"engine ({WORKERS} workers)",
                     f"{result.stats.wall_seconds:.2f}",
                     f"{parallel_dps:.1f}"],
                ],
                title=f"[engine] {CORPUS_SIZE}-doc corpus throughput "
                f"({os.cpu_count()} CPUs)",
            )
        )
        print()
        print(
            format_table(
                ["rule", "seconds", "share"],
                result.stats.rule_rows(),
                title="engine per-rule time (summed over workers)",
            )
        )
        print()
        print(
            format_table(
                ["stage", "count", "p50 ms", "p95 ms", "p99 ms"],
                result.stats.stage_quantile_rows(),
                title="engine per-stage latency quantiles (merged digests)",
            )
        )

    # Differential guarantee holds at benchmark scale too.
    assert result.xml_documents == serial_xml
    assert result.stats.documents == CORPUS_SIZE
    assert parallel_dps > 0 and serial_dps > 0

    cpus = os.cpu_count() or 1
    if cpus >= 2:
        # On multi-core hardware the pool must beat the serial path
        # (a loose bar: pool + pickling overhead eats into the ideal
        # cpus-times speedup, but it must at least win).
        assert parallel_dps > serial_dps, (
            f"parallel engine slower than serial on {cpus} CPUs: "
            f"{parallel_dps:.1f} vs {serial_dps:.1f} docs/sec"
        )


def test_engine_scaling_efficiency(benchmark, kb, capsys):
    """Scaling regression gate: docs/sec must not *fall* as workers are
    added, with adaptive chunk sizing on (the engine's default).

    Writes a ``scaling`` section into BENCH_engine.json -- keys carry
    the ``_per_sec``/``ratio`` suffixes :func:`bench_regressions`
    flags, so a future change that quietly un-scales the engine shows
    up in the run ledger's regression report, not just in this gate.
    """
    html = ResumeCorpusGenerator(seed=1966).generate_html(CORPUS_SIZE)

    def run(workers: int):
        engine = CorpusEngine(
            kb, engine_config=EngineConfig(max_workers=workers)
        )
        return engine.convert_corpus(html)

    single = run(1)
    multi = benchmark.pedantic(lambda: run(WORKERS), rounds=1, iterations=1)
    assert multi.xml_documents == single.xml_documents

    ratio = (
        multi.stats.docs_per_second / single.stats.docs_per_second
        if single.stats.docs_per_second
        else 0.0
    )
    scaling = {
        "corpus_documents": CORPUS_SIZE,
        "adaptive_chunking": True,
        "workers": {
            str(workers): {
                "docs_per_sec": round(stats.docs_per_second, 1),
                "docs_per_sec_per_worker": round(
                    stats.docs_per_second_per_worker, 1
                ),
                "chunk_overhead_fraction": round(
                    stats.chunk_overhead_fraction, 3
                ),
            }
            for workers, stats in ((1, single.stats), (WORKERS, multi.stats))
        },
        f"scale_ratio_{WORKERS}_over_1": round(ratio, 3),
    }
    record = {}
    if BENCH_PATH.exists():
        try:
            record = json.loads(BENCH_PATH.read_text())
        except ValueError:
            record = {}
    record["scaling"] = scaling
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            format_table(
                ["workers", "docs/sec", "docs/sec/worker", "chunk overhead"],
                [
                    [
                        str(workers),
                        f"{stats.docs_per_second:.1f}",
                        f"{stats.docs_per_second_per_worker:.1f}",
                        f"{stats.chunk_overhead_fraction:.0%}",
                    ]
                    for workers, stats in (
                        (1, single.stats),
                        (WORKERS, multi.stats),
                    )
                ],
                title=f"[engine] scaling efficiency, {CORPUS_SIZE}-doc corpus, "
                f"adaptive chunks ({os.cpu_count()} CPUs)",
            )
        )
        print(f"  {WORKERS}-worker/1-worker ratio: {ratio:.2f}x")

    floor = (
        MIN_SCALE_RATIO_MULTI_CORE
        if (os.cpu_count() or 1) >= 2
        else MIN_SCALE_RATIO_SINGLE_CORE
    )
    assert ratio >= floor, (
        f"adding workers lost throughput: {WORKERS}-worker engine at "
        f"{multi.stats.docs_per_second:.1f} docs/sec vs 1-worker "
        f"{single.stats.docs_per_second:.1f} (ratio {ratio:.2f} < {floor})"
    )


def test_tracing_overhead(benchmark, kb, capsys):
    """Throughput with full tracing + provenance vs the untraced engine.

    The observability budget is ~5% on the instrumented hot path; a
    single-round wall-clock comparison is too noisy to pin 5%, so the
    assertion is a loose guard against pathological slowdowns (traced
    must stay within 2x) while the measured ratio is printed for the
    CI log.  Byte-identical output is re-checked on the way.
    """
    from repro.obs import ProvenanceLog, Tracer

    html = ResumeCorpusGenerator(seed=1966).generate_html(CORPUS_SIZE)
    engine = CorpusEngine(
        kb, engine_config=EngineConfig(max_workers=WORKERS, chunk_size=16)
    )

    plain = engine.convert_corpus(html)  # warm the pool/converter paths
    started = time.perf_counter()
    plain = engine.convert_corpus(html)
    plain_seconds = time.perf_counter() - started

    tracer = Tracer()
    provenance = ProvenanceLog()
    traced = benchmark.pedantic(
        lambda: engine.convert_corpus(html, tracer=tracer, provenance=provenance),
        rounds=1,
        iterations=1,
    )
    traced_seconds = traced.stats.wall_seconds
    overhead = traced_seconds / plain_seconds - 1.0 if plain_seconds else 0.0

    with capsys.disabled():
        print()
        print(
            format_table(
                ["path", "seconds", "docs/sec"],
                [
                    ["tracing off", f"{plain_seconds:.2f}",
                     f"{CORPUS_SIZE / plain_seconds:.1f}"],
                    ["tracing + provenance on", f"{traced_seconds:.2f}",
                     f"{traced.stats.docs_per_second:.1f}"],
                    ["overhead", f"{overhead:+.1%}", ""],
                ],
                title=f"[engine] tracing overhead, {CORPUS_SIZE}-doc corpus",
            )
        )
        print(
            f"  spans={len(tracer.spans)} "
            f"events={len(provenance.events)}"
        )

    assert traced.xml_documents == plain.xml_documents
    assert len(tracer.spans) > 0 and len(provenance.events) > 0
    assert traced_seconds < 2.0 * max(plain_seconds, 0.05), (
        f"tracing overhead pathological: {plain_seconds:.2f}s -> "
        f"{traced_seconds:.2f}s"
    )

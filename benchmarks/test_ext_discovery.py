"""Experiment E11 -- Section 5 extension: automatic concept-instance
discovery.

Paper (future work): "we are developing different methods to
automatically extract concept instances from a training set of HTML
documents and thus to further automate the process."

Reproduction: mine keyword proposals from labeled training documents,
augment the knowledge base, and measure the effect on the
unidentified-token ratio (the paper's user-feedback metric) and on
extraction accuracy.  Expected shape: the ratio drops as training data
grows, without hurting accuracy.
"""

from __future__ import annotations

import copy

from repro.concepts.discovery import augment_knowledge_base, propose_instances
from repro.convert.config import ConversionConfig
from repro.convert.pipeline import DocumentConverter
from repro.corpus.generator import ResumeCorpusGenerator
from repro.dom.treeops import iter_elements
from repro.evaluation.accuracy import evaluate_accuracy
from repro.evaluation.report import format_table

TRAIN_SIZES = (0, 10, 30, 80)
EVAL_DOCS = 20


def harvest_labels(docs):
    return [
        (element.get_val(), element.tag)
        for doc in docs
        for element in iter_elements(doc.ground_truth)
        if element.get_val() and element.tag != "RESUME"
    ]


def test_instance_discovery(benchmark, kb, capsys):
    generator = ResumeCorpusGenerator(seed=31)
    eval_docs = generator.generate(EVAL_DOCS)
    train_pool = generator.generate(max(TRAIN_SIZES), start_id=1000)

    def measure(knowledge):
        converter = DocumentConverter(knowledge, ConversionConfig())
        results = [converter.convert(doc.html) for doc in eval_docs]
        report = evaluate_accuracy(
            [(r.root, d.ground_truth) for r, d in zip(results, eval_docs)]
        )
        unidentified = sum(
            r.instance_stats.unidentified for r in results
        ) / sum(r.instance_stats.total for r in results)
        return report.accuracy, unidentified

    def run():
        rows = {}
        for size in TRAIN_SIZES:
            knowledge = copy.deepcopy(kb)
            proposed = 0
            if size:
                proposals = propose_instances(
                    harvest_labels(train_pool[:size]), kb=knowledge, min_count=4
                )
                proposed = augment_knowledge_base(knowledge, proposals)
            rows[size] = (*measure(knowledge), proposed)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["training docs", "proposals added", "accuracy %", "unidentified %"],
                [
                    [size, added, f"{acc:.1f}", f"{100 * unident:.1f}"]
                    for size, (acc, unident, added) in rows.items()
                ],
                title="[E11 / Section 5] Automatic instance discovery",
            )
        )

    base_acc, base_unident, _ = rows[0]
    best_acc, best_unident, added = rows[max(TRAIN_SIZES)]
    assert added > 0
    # The feedback metric improves ...
    assert best_unident < base_unident
    # ... without wrecking accuracy (small fluctuations allowed).
    assert best_acc >= base_acc - 3.0

"""Run-intelligence overhead: digest observation, merging, detection.

Not a paper experiment -- the engineering numbers that justify leaving
the quantile digests on by default: observing a latency must cost
microseconds (it runs eight times per document, once per stage plus the
end-to-end row), and a parent-side merge must be cheap enough to run
once per chunk.  The regression detector is exercised against the
committed benchmark baselines the CI gate uses.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.quantiles import QuantileDigest
from repro.obs.runlog import bench_regressions

REPO_ROOT = Path(__file__).resolve().parent.parent


def synthetic_latencies(count: int) -> list[float]:
    # Deterministic latency-shaped values spanning the common decades.
    return [0.0001 * (i % 97 + 1) * (10 ** (i % 4)) for i in range(count)]


def test_digest_observe_throughput(benchmark):
    values = synthetic_latencies(10_000)

    def run():
        digest = QuantileDigest()
        digest.observe_many(values)
        return digest

    digest = benchmark(run)
    assert digest.count == len(values)
    assert digest.quantile(0.95) > 0


def test_digest_chunk_merge_throughput(benchmark):
    """One hundred chunk digests folded parent-side."""
    chunks = []
    values = synthetic_latencies(6_400)
    for start in range(0, len(values), 64):
        chunk = QuantileDigest()
        chunk.observe_many(values[start : start + 64])
        chunks.append(chunk)

    def run():
        merged = QuantileDigest()
        for chunk in chunks:
            merged.update(chunk)
        return merged

    merged = benchmark(run)
    serial = QuantileDigest()
    serial.observe_many(values)
    assert merged.counts == serial.counts
    assert merged.quantile(0.5) == serial.quantile(0.5)


def test_regression_detector_on_committed_baselines(benchmark):
    """The CI gate's self-compare: committed BENCH files vs themselves
    must be regression-free, and the walk must be cheap."""
    documents = [
        json.loads((REPO_ROOT / name).read_text())
        for name in ("BENCH_engine.json", "BENCH_tagging.json")
        if (REPO_ROOT / name).exists()
    ]
    assert documents, "committed BENCH baselines missing"

    def run():
        return [
            bench_regressions(document, document) for document in documents
        ]

    results = benchmark(run)
    assert all(regressions == [] for regressions in results)

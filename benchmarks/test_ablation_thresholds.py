"""Design-choice ablations: the mining thresholds.

Two knobs the paper exposes but does not sweep:

* ``supThreshold``/``ratioThreshold`` (Section 3.2) -- "the higher
  supThreshold, the more selective and thus common are the schema
  structures discovered".
* ``repThreshold`` (Section 3.3) -- "empirical studies prove the value 3
  to be useful" (also observed by XTRACT [17]).

Reproduction: sweep both and verify the monotone shapes the paper's
prose implies: schema size decreases with supThreshold, and the number
of elements marked repetitive decreases with repThreshold, with 3
sitting on the stable plateau.
"""

from __future__ import annotations

from repro.evaluation.report import format_table
from repro.schema.dtd import Multiplicity, derive_dtd
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema

SUP_THRESHOLDS = (0.1, 0.25, 0.4, 0.6, 0.8, 1.0)
REP_THRESHOLDS = (2, 3, 4, 6, 10)


def test_support_threshold_sweep(benchmark, kb, documents50, capsys):
    def run():
        sizes = {}
        for threshold in SUP_THRESHOLDS:
            frequent = mine_frequent_paths(
                documents50,
                sup_threshold=threshold,
                constraints=kb.constraints,
                candidate_labels=kb.concept_tags(),
            )
            sizes[threshold] = (len(frequent.paths), frequent.nodes_explored)
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["supThreshold", "frequent paths", "candidates explored"],
                [[f"{t:.2f}", *sizes[t]] for t in SUP_THRESHOLDS],
                title="[ablation] Schema size vs support threshold",
            )
        )

    counts = [sizes[t][0] for t in SUP_THRESHOLDS]
    assert all(a >= b for a, b in zip(counts, counts[1:])), counts
    assert counts[0] > counts[-1]


def test_rep_threshold_sweep(benchmark, kb, documents50, capsys):
    schema = MajoritySchema.from_frequent_paths(
        mine_frequent_paths(
            documents50,
            sup_threshold=0.4,
            constraints=kb.constraints,
            candidate_labels=kb.concept_tags(),
        )
    )

    def run():
        repetitive = {}
        for threshold in REP_THRESHOLDS:
            dtd = derive_dtd(schema, documents50, rep_threshold=threshold)
            repetitive[threshold] = sum(
                1
                for element in dtd.elements.values()
                for particle in element.particles
                if particle.multiplicity is Multiplicity.PLUS
            )
        return repetitive

    repetitive = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["repThreshold", "elements marked e+"],
                [[t, repetitive[t]] for t in REP_THRESHOLDS],
                title="[ablation] Repetition marking vs repThreshold "
                "(paper picks 3)",
            )
        )

    counts = [repetitive[t] for t in REP_THRESHOLDS]
    assert all(a >= b for a, b in zip(counts, counts[1:])), counts
    # At the paper's value some repetition is found; at absurd values none.
    assert repetitive[3] > 0
    assert repetitive[10] <= repetitive[2]

"""Experiment E5 -- Figures 2 and 3: the label-path example.

Paper: three example resume trees A, B, C (Figure 2) reduce to the label
path tree of Figure 3 (resume -> objective | contact | education ->
degree -> date/institution | institution -> degree/date).

Reproduction: the exact trees, hard-coded; the extracted search space
must equal Figure 3's path set, and thresholding must behave as
Section 3.2 describes (support(p)=1 iff the path occurs in every tree).
"""

from __future__ import annotations

from repro.dom.node import Element
from repro.evaluation.report import format_table
from repro.schema.dataguide import build_dataguide
from repro.schema.frequent import PathStatistics
from repro.schema.paths import extract_paths


def tree(spec):
    tag, kids = spec
    element = Element(tag)
    for kid in kids:
        element.append_child(tree(kid))
    return element


TREE_A = ("resume", [
    ("objective", []),
    ("contact", []),
    ("education", [
        ("degree", [("date", []), ("institution", [])]),
        ("degree", [("date", [])]),
    ]),
])
TREE_B = ("resume", [
    ("contact", []),
    ("education", [
        ("degree", [("date", []), ("institution", [])]),
        ("degree", [("institution", []), ("date", [])]),
    ]),
])
TREE_C = ("resume", [
    ("education", [
        ("institution", [("degree", []), ("date", [])]),
        ("institution", [("degree", []), ("date", [])]),
    ]),
])

# Figure 3: the tree of label paths of {A, B, C}.
FIGURE3_PATHS = {
    ("resume",),
    ("resume", "objective"),
    ("resume", "contact"),
    ("resume", "education"),
    ("resume", "education", "degree"),
    ("resume", "education", "degree", "date"),
    ("resume", "education", "degree", "institution"),
    ("resume", "education", "institution"),
    ("resume", "education", "institution", "degree"),
    ("resume", "education", "institution", "date"),
}


def test_figure23_label_paths(benchmark, capsys):
    documents = benchmark(
        lambda: [extract_paths(tree(spec)) for spec in (TREE_A, TREE_B, TREE_C)]
    )

    union = set()
    for doc in documents:
        union |= doc.paths
    stats = PathStatistics.from_documents(documents)

    with capsys.disabled():
        print()
        rows = [
            ["/".join(path), f"{stats.support(path):.2f}"]
            for path in sorted(union)
        ]
        print(
            format_table(
                ["label path", "support"],
                rows,
                title="[E5 / Figures 2-3] Label paths of trees A, B, C",
            )
        )

    assert union == FIGURE3_PATHS

    # Section 3.2's stated properties of support.
    assert stats.support(("resume",)) == 1.0
    assert stats.support(("resume", "education")) == 1.0
    assert 0 < stats.support(("resume", "objective")) < 1.0

    # The DataGuide of the three trees IS Figure 3.
    guide = build_dataguide(documents)
    assert guide.paths() == FIGURE3_PATHS

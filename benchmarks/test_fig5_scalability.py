"""Experiment E3 -- Figure 5: scalability.

Paper: full pipeline (conversion + schema discovery) timed on datasets of
up to 380 resumes on a Pentium 266; "the running time bears a very strong
linear relationship with the number of concept nodes" (and with node and
document counts); avg 35 s/document on that hardware.

Reproduction: the same sweep on this machine.  Absolute seconds differ
by orders of magnitude (hardware); the reproducible claim is linearity,
asserted as R^2 of the least-squares fit.
"""

from __future__ import annotations

from repro.evaluation.report import format_table
from repro.evaluation.scaling import run_scaling_experiment

SIZES = [25, 50, 100, 200, 380]


def test_figure5_scalability(benchmark, kb, capsys):
    report = benchmark.pedantic(
        lambda: run_scaling_experiment(kb, SIZES, seed=1966),
        rounds=1,
        iterations=1,
    )

    rows = [
        [p.documents, p.nodes, p.concept_nodes, f"{p.seconds:.3f}"]
        for p in report.points
    ]
    fits = {m: report.fit_against(m) for m in ("documents", "nodes", "concept_nodes")}

    with capsys.disabled():
        print()
        print(
            format_table(
                ["documents", "nodes", "concept nodes", "seconds"],
                rows,
                title="[E3 / Figure 5] Pipeline runtime vs corpus size",
            )
        )
        print()
        print(
            format_table(
                ["measure", "slope (s/unit)", "R^2"],
                [
                    [m, f"{slope:.2e}", f"{r2:.4f}"]
                    for m, (slope, r2) in fits.items()
                ],
                title="linear fits (paper: 'very strong linear relationship')",
            )
        )
        print(
            f"\nseconds/document at 380 docs: {report.seconds_per_document:.4f} "
            "(paper: 35 s/doc on a Pentium 266MHz)"
        )

    for measure, (slope, r2) in fits.items():
        assert slope > 0, measure
        assert r2 > 0.95, f"{measure} fit R^2={r2}"

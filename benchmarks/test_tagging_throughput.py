"""Tagging throughput: naive synonym matcher vs the Aho-Corasick fast path.

Not a paper experiment -- the engineering number behind the PR-4 fast
tagger: tokens/sec of :class:`SynonymMatcher` (one compiled regex scan
per instance, 233 instances in the resume KB) vs
:class:`FastSynonymMatcher` (one automaton pass + LRU replay for
repeated tokens) over the token stream of a generated corpus.  The
measured numbers and the cache hit rate are written to
``BENCH_tagging.json`` at the repo root so regressions show up in
review diffs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.concepts.fastmatch import FastSynonymMatcher
from repro.concepts.matcher import SynonymMatcher
from repro.corpus.generator import ResumeCorpusGenerator
from repro.dom.node import Element, Text
from repro.evaluation.report import format_table
from repro.htmlparse.parser import parse_html
from repro.htmlparse.tidy import tidy

CORPUS_SIZE = 80
ROUNDS = 3
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_tagging.json"


def text_tokens(html: str) -> list[str]:
    """The stripped text leaves of a tidied document, in document order.

    This is the same token stream the instance rule walks, so the
    benchmark exercises the matcher exactly as the pipeline does.
    """
    tokens: list[str] = []

    def walk(node) -> None:
        if isinstance(node, Text):
            stripped = node.text.strip()
            if stripped:
                tokens.append(stripped)
        elif isinstance(node, Element):
            for child in node.children:
                walk(child)

    walk(tidy(parse_html(html)))
    return tokens


@pytest.fixture(scope="module")
def token_stream():
    corpus = ResumeCorpusGenerator(seed=1966).generate_html(CORPUS_SIZE)
    tokens = [token for html in corpus for token in text_tokens(html)]
    assert len(tokens) > 1000
    return tokens


def best_pass_seconds(find_all, tokens: list[str]) -> float:
    """Best of ``ROUNDS`` full passes over the token stream."""
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for token in tokens:
            find_all(token)
        best = min(best, time.perf_counter() - started)
    return best


def test_tagging_throughput(benchmark, kb, token_stream, capsys):
    naive = SynonymMatcher(kb)
    fast = FastSynonymMatcher(kb)

    # Equivalence re-checked at benchmark scale before timing anything.
    for token in token_stream[:200]:
        assert fast.find_all(token) == naive.find_all(token)
    fast.cache.clear()

    naive_seconds = best_pass_seconds(naive.find_all, token_stream)

    def fast_pass():
        for token in token_stream:
            fast.find_all(token)

    benchmark.pedantic(fast_pass, rounds=1, iterations=1, warmup_rounds=1)
    fast_seconds = best_pass_seconds(fast.find_all, token_stream)

    count = len(token_stream)
    naive_tps = count / naive_seconds
    fast_tps = count / fast_seconds
    speedup = naive_seconds / fast_seconds
    counters = fast.cache.counters()
    lookups = counters["hits"] + counters["misses"]
    hit_rate = counters["hits"] / lookups if lookups else 0.0

    record = {
        "corpus_documents": CORPUS_SIZE,
        "tokens": count,
        "unique_tokens": len(set(token_stream)),
        "naive_tokens_per_sec": round(naive_tps, 1),
        "fast_tokens_per_sec": round(fast_tps, 1),
        "speedup": round(speedup, 2),
        "cache_hit_rate": round(hit_rate, 4),
        "cache_evictions": counters["evictions"],
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            format_table(
                ["matcher", "tokens/sec", "speedup"],
                [
                    ["naive (per-instance regex)", f"{naive_tps:,.0f}", "1.0x"],
                    ["fast (automaton + LRU)", f"{fast_tps:,.0f}",
                     f"{speedup:.1f}x"],
                ],
                title=f"[tagging] {count} tokens from {CORPUS_SIZE} docs "
                f"({record['unique_tokens']} unique)",
            )
        )
        print(
            f"  cache: {hit_rate:.0%} hit rate, "
            f"{counters['evictions']} evictions -> {BENCH_PATH.name}"
        )

    assert speedup >= 3.0, (
        f"fast tagger below the 3x bar: {speedup:.2f}x "
        f"({naive_tps:.0f} -> {fast_tps:.0f} tokens/sec)"
    )


def test_cold_cache_still_wins(kb, token_stream):
    """Even with the LRU disabled the automaton pass must beat naive.

    Guards against the cache masking an automaton regression: a unique
    (cache-less) pass over the stream's distinct tokens still has to be
    faster than the naive matcher on the same tokens.
    """
    unique = list(dict.fromkeys(token_stream))
    naive = SynonymMatcher(kb)
    fast = FastSynonymMatcher(kb, cache_size=0)
    naive_seconds = best_pass_seconds(naive.find_all, unique)
    fast_seconds = best_pass_seconds(fast.find_all, unique)
    assert fast_seconds < naive_seconds, (
        f"automaton slower than naive without cache: "
        f"{fast_seconds:.3f}s vs {naive_seconds:.3f}s over "
        f"{len(unique)} unique tokens"
    )

"""Experiment E2 -- Section 4.2: concept-constraint search-space reduction.

Paper: exhaustive enumeration of label paths up to length 4 over 24
concepts explores 24^5 - 1 = 7,962,623 nodes; the title/content depth
constraints + no-repetition + depth cap shrink it to 1 + 11 + 11*13 +
11*13*12 = 1,871 nodes (0.023%); not extending zero-support nodes leaves
73 actually explored (0.0009%).

The first two numbers are machine-independent arithmetic and must match
exactly; the third is data dependent (we report our corpus's analog).
"""

from __future__ import annotations

from repro.evaluation.report import format_table
from repro.evaluation.searchspace import run_search_space_experiment


def test_section42_search_space(benchmark, kb, documents50, capsys):
    report = benchmark.pedantic(
        lambda: run_search_space_experiment(kb, documents50),
        rounds=1,
        iterations=1,
    )

    with capsys.disabled():
        print()
        print(
            format_table(
                ["quantity", "measured", "paper"],
                [
                    ["exhaustive nodes (24^5 - 1)", report.exhaustive_nodes, 7_962_623],
                    ["constraint-admissible nodes", report.constrained_nodes, 1_871],
                    [
                        "constrained fraction %",
                        f"{report.constrained_fraction:.4f}",
                        "0.023",
                    ],
                    ["candidates actually generated", report.explored_nodes, "-"],
                    [
                        "nodes with non-zero support",
                        report.positive_support_nodes,
                        "73",
                    ],
                    [
                        "explored fraction %",
                        f"{report.explored_fraction:.5f}",
                        "0.0009",
                    ],
                    ["frequent paths found", report.frequent_paths, "-"],
                ],
                title="[E2 / Section 4.2] Search-space reduction",
            )
        )

    # Exact machine-independent reproductions:
    assert report.exhaustive_nodes == 7_962_623
    assert report.constrained_nodes == 1_871
    # Data-dependent shape: same order of magnitude as the paper's 73.
    assert report.positive_support_nodes < 300
    assert report.explored_fraction < 0.01

"""Experiment E8 -- Section 2.3.1 ablation: synonym matching vs the
multinomial Bayes classifier.

Paper: concept instances are identified "(1) by synonyms, and (2) by a
multinomial Bayes classifier", with labeled documents as the Bayes
training channel and the unidentified-token ratio as user feedback.

Reproduction: train the classifier on ground-truth token labels from a
training slice of the corpus and compare extraction accuracy and the
unidentified-token ratio across the three tagger modes, at growing
training-set sizes.  Expected shape: synonyms alone are strong (the KB
was curated for this topic); Bayes alone improves with training data;
hybrid is at least as good as Bayes alone and reduces the unidentified
ratio relative to synonyms alone.
"""

from __future__ import annotations

from repro.concepts.bayes import MultinomialNaiveBayes
from repro.convert.config import ConversionConfig
from repro.convert.pipeline import DocumentConverter
from repro.corpus.generator import ResumeCorpusGenerator
from repro.dom.treeops import iter_elements
from repro.evaluation.accuracy import evaluate_accuracy
from repro.evaluation.report import format_table

TRAIN_SIZES = (5, 20, 60)
EVAL_DOCS = 25


def training_pairs(docs):
    """(token text, concept tag) pairs harvested from ground truth."""
    pairs = []
    for doc in docs:
        for element in iter_elements(doc.ground_truth):
            if element.get_val() and element.tag != "RESUME":
                pairs.append((element.get_val(), element.tag))
    return pairs


def run_mode(kb, eval_docs, tagger, bayes=None):
    converter = DocumentConverter(
        kb, ConversionConfig(tagger=tagger), bayes=bayes
    )
    results = [converter.convert(doc.html) for doc in eval_docs]
    report = evaluate_accuracy(
        [(r.root, d.ground_truth) for r, d in zip(results, eval_docs)]
    )
    unident = sum(r.instance_stats.unidentified for r in results) / max(
        1, sum(r.instance_stats.total for r in results)
    )
    return report.accuracy, unident


def test_tagger_ablation(benchmark, kb, capsys):
    generator = ResumeCorpusGenerator(seed=77)
    eval_docs = generator.generate(EVAL_DOCS)
    train_pool = generator.generate(max(TRAIN_SIZES), start_id=1000)

    def run():
        rows = {}
        rows["synonym"] = run_mode(kb, eval_docs, "synonym")
        for size in TRAIN_SIZES:
            bayes = MultinomialNaiveBayes().fit(training_pairs(train_pool[:size]))
            rows[f"bayes (train={size})"] = run_mode(kb, eval_docs, "bayes", bayes)
            rows[f"hybrid (train={size})"] = run_mode(kb, eval_docs, "hybrid", bayes)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["tagger", "accuracy %", "unidentified tokens %"],
                [
                    [name, f"{acc:.1f}", f"{100 * unident:.1f}"]
                    for name, (acc, unident) in rows.items()
                ],
                title="[E8] Instance identification channel ablation",
            )
        )

    syn_acc, syn_unident = rows["synonym"]
    # Bayes improves with training data.
    assert rows[f"bayes (train={TRAIN_SIZES[-1]})"][0] >= rows[f"bayes (train={TRAIN_SIZES[0]})"][0] - 2.0
    # Hybrid reduces the unidentified ratio vs synonyms alone.
    assert rows[f"hybrid (train={TRAIN_SIZES[-1]})"][1] <= syn_unident
    # The curated synonym KB remains competitive (paper's main channel).
    assert syn_acc >= 80.0

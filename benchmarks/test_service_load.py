"""Service load benchmark: 1000+ concurrent clients, zero drops.

Not a paper experiment -- the acceptance gate for the conversion
service: a thousand concurrent simulated clients hammer a live server
over real sockets, every request must be answered (backpressure, never
load-shedding), and the latency quantiles + throughput land in
``BENCH_service.json`` where :func:`repro.obs.runlog.bench_regressions`
gates future changes (the ``requests_per_sec`` key carries the
``_per_sec`` marker the walker flags on drops).
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

from repro.corpus.generator import ResumeCorpusGenerator
from repro.evaluation.report import format_table
from repro.service import ConversionService, ServiceConfig
from repro.service.loadtest import ServerThread, run_load

CLIENTS = 1000
REQUESTS_PER_CLIENT = 1
DISTINCT_DOCUMENTS = 6
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def test_service_load_thousand_clients(benchmark, kb, tmp_path, capsys):
    sources = ResumeCorpusGenerator(seed=1966).generate_html(
        DISTINCT_DOCUMENTS
    )
    service = ConversionService(
        kb, state_dir=tmp_path / "state", config=ServiceConfig()
    )
    server = ServerThread(service)
    host, port = server.start()
    try:
        report = benchmark.pedantic(
            lambda: asyncio.run(run_load(
                host, port, sources,
                clients=CLIENTS,
                requests_per_client=REQUESTS_PER_CLIENT,
            )),
            rounds=1, iterations=1,
        )
    finally:
        server.stop()

    # The acceptance criteria: every request answered, every document
    # converted -- concurrency may reorder, never drop.
    assert report.dropped == 0, report.to_json()
    assert report.failed == 0, report.to_json()
    assert report.completed == CLIENTS * REQUESTS_PER_CLIENT
    assert report.converted == report.completed
    assert report.requests_per_sec > 0

    record = {}
    if BENCH_PATH.exists():
        try:
            record = json.loads(BENCH_PATH.read_text())
        except ValueError:
            record = {}
    record["load"] = report.to_json()
    record["load"]["workers"] = service.config.resolved_workers()
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    latency = report.latency.summary()
    with capsys.disabled():
        print()
        print(
            format_table(
                ["metric", "value"],
                [
                    ["clients", str(report.clients)],
                    ["requests", str(report.completed)],
                    ["dropped", str(report.dropped)],
                    ["req/sec", f"{report.requests_per_sec:.1f}"],
                    ["p50 latency", f"{latency['p50'] * 1000:.1f} ms"],
                    ["p95 latency", f"{latency['p95'] * 1000:.1f} ms"],
                    ["p99 latency", f"{latency['p99'] * 1000:.1f} ms"],
                ],
                title=f"[service] {CLIENTS} concurrent clients "
                f"({service.config.resolved_workers()} workers, "
                f"{os.cpu_count()} CPUs)",
            )
        )

"""Experiment E10 -- Section 5 extension: linkage structures.

Paper (future work): "we are in particular interested in incorporating
linkage structures among HTML documents ... to integrate even more
heterogeneous, multi-topic HTML documents into XML repositories."

Reproduction: a simulated web where every resume is a multi-page site
(the skills section lives behind a "Technical Skills" link).  Converting
each main page alone loses the linked section; the linked-document
converter follows topic links and grafts the section back.  Expected
shape: strictly fewer logical errors with link following, at a modest
extra fetch cost.
"""

from __future__ import annotations

from repro.convert.linked import LinkedDocumentConverter
from repro.corpus.web import SimulatedWeb
from repro.evaluation.accuracy import evaluate_accuracy
from repro.evaluation.report import format_table

RESUMES = 25


def test_linked_document_conversion(benchmark, kb, converter, capsys):
    web = SimulatedWeb(
        resume_count=RESUMES, noise_count=20, seed=9, multipage_fraction=1.0
    )
    linked = LinkedDocumentConverter(
        converter,
        fetch=lambda url: (page.html if (page := web.fetch(url)) else None),
    )
    resumes = [web.fetch(url) for url in sorted(web.resume_urls())]

    def run():
        plain = evaluate_accuracy(
            [
                (converter.convert(page.html).root, page.resume.ground_truth)
                for page in resumes
            ]
        )
        outcomes = [linked.convert(page.html) for page in resumes]
        merged = evaluate_accuracy(
            [
                (outcome.root, page.resume.ground_truth)
                for outcome, page in zip(outcomes, resumes)
            ]
        )
        followed = sum(len(outcome.followed) for outcome in outcomes)
        return plain, merged, followed

    plain, merged, followed = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["conversion", "avg errors/doc", "avg error %", "accuracy %"],
                [
                    [
                        "main page only",
                        f"{plain.avg_errors_per_document:.1f}",
                        f"{plain.avg_error_percentage:.1f}",
                        f"{plain.accuracy:.1f}",
                    ],
                    [
                        "with topic links followed",
                        f"{merged.avg_errors_per_document:.1f}",
                        f"{merged.avg_error_percentage:.1f}",
                        f"{merged.accuracy:.1f}",
                    ],
                ],
                title=f"[E10 / Section 5] Linked documents "
                f"({RESUMES} multi-page resumes, {followed} links followed)",
            )
        )

    assert followed == RESUMES  # every skills link found and fetched
    assert merged.avg_errors_per_document < plain.avg_errors_per_document
    assert merged.accuracy > plain.accuracy

"""Component micro-benchmarks (proper pytest-benchmark loops).

Not paper experiments -- engineering numbers for the substrate pieces,
useful when tuning: HTML parsing throughput, rule application, instance
matching, path extraction, mining, and tree edit distance.
"""

from __future__ import annotations

import random

import pytest

from repro.concepts.matcher import SynonymMatcher
from repro.convert.pipeline import DocumentConverter
from repro.corpus.generator import ResumeCorpusGenerator
from repro.dom.node import Element
from repro.htmlparse.parser import parse_html
from repro.htmlparse.tidy import tidy
from repro.mapping.tree_edit import tree_edit_distance
from repro.schema.frequent import mine_frequent_paths
from repro.schema.paths import extract_paths


@pytest.fixture(scope="module")
def sample_html():
    return ResumeCorpusGenerator(seed=8).generate_one(0).html


def test_html_parse(benchmark, sample_html):
    document = benchmark(parse_html, sample_html)
    assert document.tag == "html"


def test_tidy_pass(benchmark, sample_html):
    def run():
        return tidy(parse_html(sample_html))

    assert benchmark(run).tag == "html"


def test_full_conversion(benchmark, converter, sample_html):
    result = benchmark(converter.convert, sample_html)
    assert result.root.tag == "RESUME"


def test_synonym_matching(benchmark, kb):
    matcher = SynonymMatcher(kb)
    token = "June 1996, University of California at Davis, B.S. (Computer Science)"
    matches = benchmark(matcher.find_all, token)
    assert matches


def test_path_extraction(benchmark, converter, sample_html):
    root = converter.convert(sample_html).root
    documents = benchmark(extract_paths, root)
    assert documents.paths


def test_frequent_path_mining(benchmark, kb, converter):
    corpus = ResumeCorpusGenerator(seed=8).generate_html(30)
    documents = [extract_paths(converter.convert(html).root) for html in corpus]
    result = benchmark(
        mine_frequent_paths,
        documents,
        sup_threshold=0.4,
        constraints=kb.constraints,
        candidate_labels=kb.concept_tags(),
    )
    assert result.paths


def test_tree_edit_distance_40_nodes(benchmark):
    rng = random.Random(4)

    def random_tree(n):
        nodes = [Element("n0")]
        for _ in range(n - 1):
            parent = rng.choice(nodes)
            child = Element(f"n{rng.randint(0, 6)}")
            parent.append_child(child)
            nodes.append(child)
        return nodes[0]

    a, b = random_tree(40), random_tree(40)
    distance = benchmark(tree_edit_distance, a, b)
    assert distance >= 0

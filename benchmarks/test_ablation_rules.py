"""Design ablations on the conversion rules themselves.

Two choices DESIGN.md flags for ablation:

* *Grouping-rule tag weights* (Section 2.3.2): "grouping right siblings
  of nodes marked with h1 has a higher priority than grouping right
  siblings of nodes marked with p at the same level."  We compare the
  paper's heading-dominant weights against flat weights (all equal) and
  inverted weights (inline markup outranks headings).
* *Tokenizer delimiter set* (Sections 2.3.1/4): the paper uses ``; , :``;
  we compare against under-splitting (comma only) and over-splitting
  (adding ``.`` -- which shreds abbreviations like "B.S." and decimal
  GPAs).
"""

from __future__ import annotations

from repro.convert.config import ConversionConfig
from repro.convert.pipeline import DocumentConverter
from repro.corpus.generator import ResumeCorpusGenerator
from repro.evaluation.accuracy import evaluate_accuracy
from repro.evaluation.report import format_table
from repro.htmlparse.taginfo import DEFAULT_GROUP_TAG_WEIGHTS

DOCS = 30


def accuracy_with(kb, config: ConversionConfig) -> float:
    converter = DocumentConverter(kb, config)
    docs = ResumeCorpusGenerator(seed=1966).generate(DOCS)
    report = evaluate_accuracy(
        [(converter.convert(d.html).root, d.ground_truth) for d in docs]
    )
    return report.accuracy


def test_grouping_weight_ablation(benchmark, kb, capsys):
    flat = {tag: 50 for tag in DEFAULT_GROUP_TAG_WEIGHTS}
    inverted = {
        tag: 200 - weight for tag, weight in DEFAULT_GROUP_TAG_WEIGHTS.items()
    }

    def run():
        return {
            "paper weights (headings dominate)": accuracy_with(
                kb, ConversionConfig()
            ),
            "flat weights (all equal)": accuracy_with(
                kb, ConversionConfig(group_tag_weights=flat)
            ),
            "inverted weights (inline dominates)": accuracy_with(
                kb, ConversionConfig(group_tag_weights=inverted)
            ),
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["grouping weights", "accuracy %"],
                [[name, f"{acc:.1f}"] for name, acc in rows.items()],
                title="[ablation] Grouping-rule tag weights (Section 2.3.2)",
            )
        )

    paper = rows["paper weights (headings dominate)"]
    inverted_acc = rows["inverted weights (inline dominates)"]
    # The paper's heading-dominant ordering must not lose to inversion.
    assert paper >= inverted_acc - 0.5
    assert paper > 80.0


def test_delimiter_ablation(benchmark, kb, capsys):
    def run():
        return {
            "; , :  (paper)": accuracy_with(kb, ConversionConfig()),
            ",  (under-splitting)": accuracy_with(
                kb, ConversionConfig(delimiters=(",",))
            ),
            "; , : .  (over-splitting)": accuracy_with(
                kb, ConversionConfig(delimiters=(";", ",", ":", "."))
            ),
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["delimiters", "accuracy %"],
                [[name, f"{acc:.1f}"] for name, acc in rows.items()],
                title="[ablation] Tokenization delimiters (Section 2.3.1)",
            )
        )

    paper = rows["; , :  (paper)"]
    # The paper's set should be at least as good as both perturbations.
    assert paper >= rows[",  (under-splitting)"] - 0.5
    assert paper >= rows["; , : .  (over-splitting)"] - 0.5
"""Shared fixtures for the experiment benchmarks.

Each benchmark file regenerates one table/figure of the paper (see
DESIGN.md's experiment index) and prints a paper-vs-measured comparison
through ``capsys.disabled()`` so the tables always reach the terminal.
"""

from __future__ import annotations

import pytest

from repro.concepts.resume_kb import build_resume_knowledge_base
from repro.convert.pipeline import DocumentConverter
from repro.corpus.generator import ResumeCorpusGenerator
from repro.schema.paths import extract_paths

SEED = 1966


@pytest.fixture(scope="session")
def kb():
    return build_resume_knowledge_base()


@pytest.fixture(scope="session")
def converter(kb):
    return DocumentConverter(kb)


@pytest.fixture(scope="session")
def corpus50():
    """The 50-document corpus of the Figure 4 experiment."""
    return ResumeCorpusGenerator(seed=SEED).generate(50)


@pytest.fixture(scope="session")
def converted50(converter, corpus50):
    return [converter.convert(doc.html) for doc in corpus50]


@pytest.fixture(scope="session")
def documents50(converted50):
    return [extract_paths(result.root) for result in converted50]

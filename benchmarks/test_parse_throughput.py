"""Parse-stage throughput: the bulk-scanning tokenizer vs the legacy scanner.

Not a paper experiment -- the engineering number behind the parser fast
path: MB/sec of ``_tokenize_fast`` (one master-regex match per markup
construct) vs ``_tokenize_legacy`` (per-character stepping) over three
HTML profiles, plus the end-to-end engine effect (docs/sec at 1/2/4
workers with the fast parser on vs off) and the size of the
:class:`PathAccumulator` wire form that chunk results ship home in.
Everything is written to ``BENCH_engine.json`` at the repo root so
regressions show up in review diffs.

The three profiles stress different tokenizer lanes:

* ``resume``    -- the generated corpus (seed 1966): text-heavy pages in
                   the five historical layout styles.
* ``chrome``    -- table-layout portal navigation: deeply nested markup,
                   ``style``/``script`` raw-text blocks, short unquoted
                   attributes.  Tag-dense, text-light.
* ``directory`` -- link directories with long unquoted CGI URLs and
                   several attributes per tag: the attribute-value hot
                   spot, where bulk scanning pays off most (this class
                   carries the headline speedup).

The regression gates sit *under* the measured numbers by a tolerance
band: shared runners showed up to ~2x run-to-run variance on the legacy
scanner, so the gates catch a lost fast path (a real regression lands at
1x) without flaking on machine noise.
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path
from random import Random

from repro.convert.config import ConversionConfig
from repro.corpus.generator import ResumeCorpusGenerator
from repro.dom.treeops import clone, deep_equal
from repro.evaluation.report import format_table
from repro.htmlparse.parser import parse_html
from repro.htmlparse.tidy import tidy
from repro.htmlparse.tokenizer import _tokenize_fast, _tokenize_legacy
from repro.runtime.engine import CorpusEngine, EngineConfig

SEED = 1966
TOKENIZER_ROUNDS = 12
TIDY_ROUNDS = 5
E2E_CORPUS_SIZE = 120
E2E_CHUNK_SIZE = 8
WORKER_COUNTS = [1, 2, 4]
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

# Gates (tolerance band under the measured headline numbers).
MIN_DIRECTORY_SPEEDUP = 4.0
MIN_AGGREGATE_SPEEDUP = 2.0
MIN_E2E_RATIO_AT_4_WORKERS = 0.9
# The single-snapshot cleanser measured 5.3x over the six-traversal
# legacy path on this corpus; a lost fast path lands at 1x.
MIN_TIDY_SPEEDUP = 3.0
# PR 6 baseline: the tidy stage cost 0.3539s summed over 4 workers on
# this corpus.  The fast path must keep it at least 3x under that.
MAX_TIDY_STAGE_SECONDS = 0.3539 / 3.0


def _write_bench(record: dict) -> None:
    """Write ``record`` to BENCH_engine.json, preserving sections other
    benchmark files own (the engine scaling gate read-modify-writes its
    own section into the same file)."""
    if BENCH_PATH.exists():
        try:
            previous = json.loads(BENCH_PATH.read_text())
        except ValueError:
            previous = {}
        for key, value in previous.items():
            record.setdefault(key, value)
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")


# -- corpus profiles ----------------------------------------------------------


def _chrome_page(rng: Random, index: int) -> str:
    """A table-layout portal page: nav chrome, raw-text blocks, short
    unquoted attributes."""
    rows = []
    for row in range(rng.randint(10, 16)):
        cells = "".join(
            f"<td class=nav width={rng.randint(40, 160)} align=left>"
            f"<a href=/section{rng.randint(0, 40)}/page{rng.randint(0, 999)}.html>"
            f"<b>Item {row}.{cell}</b></a></td>"
            for cell in range(rng.randint(3, 6))
        )
        rows.append(f"<tr>{cells}</tr>")
    style = "\n".join(
        f".c{i} {{ color: #{rng.getrandbits(24):06x}; font-size: {rng.randint(8, 14)}pt }}"
        for i in range(rng.randint(5, 12))
    )
    script = "\n".join(
        f"var v{i} = {rng.randint(0, 9999)}; if (v{i} < {rng.randint(0, 99)}) "
        f"document.write('<b>hot</b>');"
        for i in range(rng.randint(4, 10))
    )
    return (
        f"<html><head><title>Portal {index}</title>\n"
        f"<style>\n{style}\n</style>\n<script>\n{script}\n</script>\n"
        f"</head><body bgcolor=#ffffff topmargin=0>\n"
        f"<table border=0 cellpadding=2 cellspacing=0 width=100%>\n"
        + "\n".join(rows)
        + "\n</table>\n<hr size=1>\n<center><font size=1>&copy; 2001 "
        f"Portal {index}</font></center>\n</body></html>\n"
    )


def _directory_page(rng: Random, index: int) -> str:
    """A link directory: long unquoted CGI URLs (semicolon query
    separators, the W3C-recommended alternative to ``&``) and multiple
    attributes per tag -- the profile where per-character attribute
    scanning hurts the legacy path most."""
    entries = []
    for entry in range(rng.randint(30, 45)):
        params = ";".join(
            f"{key}{rng.randint(0, 9)}={rng.getrandbits(24):06x}"
            for key in (
                "cat", "id", "sess", "ref", "sort", "ord",
                "view", "page", "per", "lang", "mirror", "hit",
            )
        )
        entries.append(
            f"<li class=entry id=e{entry}><a href=/cgi-bin/search?{params} "
            f"target=_blank class=dirlink name=l{entry}>Listing {entry} of "
            f"directory {index}</a> <font size=2 color=#333366 face=arial>"
            f"updated {rng.randint(1, 28)}/0{rng.randint(1, 9)}/2001</font></li>"
        )
    return (
        f"<html><head><title>Directory {index}</title></head><body>\n"
        f"<h1>Directory {index}</h1>\n<ul>\n"
        + "\n".join(entries)
        + "\n</ul>\n</body></html>\n"
    )


def _profiles() -> dict[str, list[str]]:
    rng = Random(SEED)
    return {
        "resume": ResumeCorpusGenerator(seed=SEED).generate_html(40),
        "chrome": [_chrome_page(rng, i) for i in range(40)],
        "directory": [_directory_page(rng, i) for i in range(40)],
    }


# -- measurement --------------------------------------------------------------


def _measure_tokenizer(docs: list[str]) -> tuple[float, float, int]:
    """Best-of-``TOKENIZER_ROUNDS`` interleaved pass times (legacy, fast).

    Interleaving the two paths within each round keeps a frequency
    ramp or a noisy neighbour from biasing one side; best-of takes the
    least-perturbed observation of each.
    """
    chars = sum(len(doc) for doc in docs)
    legacy_best = fast_best = float("inf")
    for _ in range(TOKENIZER_ROUNDS):
        started = time.perf_counter()
        for doc in docs:
            for _token in _tokenize_legacy(doc):
                pass
        legacy_best = min(legacy_best, time.perf_counter() - started)
        started = time.perf_counter()
        for doc in docs:
            _tokenize_fast(doc)
        fast_best = min(fast_best, time.perf_counter() - started)
    return legacy_best, fast_best, chars


def _measure_tidy(docs: list[str]) -> tuple[float, float]:
    """Best-of-``TIDY_ROUNDS`` interleaved cleanser pass times
    (legacy, fast) over pre-parsed trees (each round tidies fresh
    clones, so both paths see identical malformed input)."""
    trees = [parse_html(doc) for doc in docs]
    legacy_best = fast_best = float("inf")
    for _ in range(TIDY_ROUNDS):
        batch = [clone(tree) for tree in trees]
        started = time.perf_counter()
        for tree in batch:
            tidy(tree, fast=False)
        legacy_best = min(legacy_best, time.perf_counter() - started)
        batch = [clone(tree) for tree in trees]
        started = time.perf_counter()
        for tree in batch:
            tidy(tree, fast=True)
        fast_best = min(fast_best, time.perf_counter() - started)
    return legacy_best, fast_best


def _engine_docs_per_sec(kb, html: list[str], *, fast: bool, workers: int):
    engine = CorpusEngine(
        kb,
        ConversionConfig(fast_parser=fast),
        engine_config=EngineConfig(max_workers=workers, chunk_size=E2E_CHUNK_SIZE),
    )
    result = engine.convert_corpus(html)
    assert result.stats.documents == len(html)
    return result


def test_parse_throughput(benchmark, kb, capsys):
    profiles = _profiles()

    # Equivalence re-checked at benchmark scale before timing anything
    # (full token tuples, source spans included).
    for docs in profiles.values():
        for doc in docs[:5]:
            assert _tokenize_fast(doc) == list(_tokenize_legacy(doc))

    tokenizer: dict[str, dict] = {}
    total_legacy = total_fast = 0.0
    total_chars = 0
    for name, docs in profiles.items():
        legacy_seconds, fast_seconds, chars = _measure_tokenizer(docs)
        total_legacy += legacy_seconds
        total_fast += fast_seconds
        total_chars += chars
        tokenizer[name] = {
            "documents": len(docs),
            "chars": chars,
            "legacy_mb_per_sec": round(chars / legacy_seconds / 1e6, 2),
            "fast_mb_per_sec": round(chars / fast_seconds / 1e6, 2),
            "speedup": round(legacy_seconds / fast_seconds, 2),
        }
    aggregate_speedup = total_legacy / total_fast
    tokenizer["aggregate"] = {
        "documents": sum(len(docs) for docs in profiles.values()),
        "chars": total_chars,
        "legacy_mb_per_sec": round(total_chars / total_legacy / 1e6, 2),
        "fast_mb_per_sec": round(total_chars / total_fast / 1e6, 2),
        "speedup": round(aggregate_speedup, 2),
    }

    # End-to-end: the same corpus through the engine with the fast parser
    # on vs off, at each worker count.
    e2e_html = ResumeCorpusGenerator(seed=SEED).generate_html(E2E_CORPUS_SIZE)

    # Tidy stage: the single-snapshot cleanser vs the six-traversal
    # legacy path, equivalence re-checked at benchmark scale first.
    for doc in e2e_html[:5]:
        assert deep_equal(
            tidy(parse_html(doc), fast=True), tidy(parse_html(doc), fast=False)
        )
    tidy_legacy_seconds, tidy_fast_seconds = _measure_tidy(e2e_html)
    tidy_speedup = tidy_legacy_seconds / tidy_fast_seconds
    engine_rows: dict[str, dict] = {}
    last_fast_result = None
    for workers in WORKER_COUNTS:
        legacy_result = _engine_docs_per_sec(
            kb, e2e_html, fast=False, workers=workers
        )
        if workers == WORKER_COUNTS[-1]:
            last_fast_result = benchmark.pedantic(
                lambda: _engine_docs_per_sec(
                    kb, e2e_html, fast=True, workers=WORKER_COUNTS[-1]
                ),
                rounds=1,
                iterations=1,
            )
            fast_result = last_fast_result
        else:
            fast_result = _engine_docs_per_sec(
                kb, e2e_html, fast=True, workers=workers
            )
        engine_rows[str(workers)] = {
            "legacy_docs_per_sec": round(legacy_result.stats.docs_per_second, 1),
            "fast_docs_per_sec": round(fast_result.stats.docs_per_second, 1),
            "ratio": round(
                fast_result.stats.docs_per_second
                / legacy_result.stats.docs_per_second,
                3,
            ),
        }

    assert last_fast_result is not None
    stage_seconds = {
        stage: round(seconds, 4)
        for stage, seconds in sorted(last_fast_result.stats.rule_seconds.items())
    }

    # Accumulator wire form: the compact pickle chunk results cross the
    # process boundary in, vs the pre-wire-form __dict__ pickle.
    accumulator = last_fast_result.accumulator
    wire_bytes = len(pickle.dumps(accumulator, protocol=pickle.HIGHEST_PROTOCOL))
    dict_bytes = len(
        pickle.dumps(dict(accumulator.__dict__), protocol=pickle.HIGHEST_PROTOCOL)
    )

    # ChunkStats wire form: same treatment, measured on a real chunk
    # from the 4-worker run (digests, rule timings, slowest docs and
    # all) -- wire tuple vs pre-PR dataclass dict state.
    sample_chunk = max(
        last_fast_result.stats.per_chunk, key=lambda c: c.documents
    )
    chunk_wire_bytes = len(
        pickle.dumps(sample_chunk, protocol=pickle.HIGHEST_PROTOCOL)
    )
    chunk_dict_bytes = len(
        pickle.dumps(dict(sample_chunk.__dict__), protocol=pickle.HIGHEST_PROTOCOL)
    )

    record = {
        "tokenizer": tokenizer,
        "tidy": {
            "documents": E2E_CORPUS_SIZE,
            "legacy_seconds": round(tidy_legacy_seconds, 4),
            "fast_seconds": round(tidy_fast_seconds, 4),
            "speedup": round(tidy_speedup, 2),
            "stage_seconds_at_4_workers": stage_seconds.get("tidy", 0.0),
        },
        "engine": {
            "corpus_documents": E2E_CORPUS_SIZE,
            "chunk_size": E2E_CHUNK_SIZE,
            "workers": engine_rows,
        },
        "stage_seconds_at_4_workers": stage_seconds,
        "accumulator_wire": {
            "wire_bytes": wire_bytes,
            "dict_state_bytes": dict_bytes,
            "savings": round(1.0 - wire_bytes / dict_bytes, 3),
        },
        "chunkstats_wire": {
            "wire_bytes": chunk_wire_bytes,
            "dict_state_bytes": chunk_dict_bytes,
            "savings": round(1.0 - chunk_wire_bytes / chunk_dict_bytes, 3),
        },
    }
    _write_bench(record)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["profile", "legacy MB/s", "fast MB/s", "speedup"],
                [
                    [
                        name,
                        f"{row['legacy_mb_per_sec']:.2f}",
                        f"{row['fast_mb_per_sec']:.2f}",
                        f"{row['speedup']:.2f}x",
                    ]
                    for name, row in tokenizer.items()
                ],
                title="[parse] tokenizer throughput (best of "
                f"{TOKENIZER_ROUNDS} interleaved rounds)",
            )
        )
        print()
        print(
            format_table(
                ["workers", "parser off", "parser on", "ratio"],
                [
                    [
                        workers,
                        f"{row['legacy_docs_per_sec']:.1f}",
                        f"{row['fast_docs_per_sec']:.1f}",
                        f"{row['ratio']:.2f}x",
                    ]
                    for workers, row in engine_rows.items()
                ],
                title=f"[parse] engine docs/sec, {E2E_CORPUS_SIZE}-doc corpus",
            )
        )
        print(
            f"  tidy ({E2E_CORPUS_SIZE} docs, best of {TIDY_ROUNDS}): "
            f"legacy {tidy_legacy_seconds * 1e3:.1f}ms, "
            f"fast {tidy_fast_seconds * 1e3:.1f}ms "
            f"({tidy_speedup:.2f}x)"
        )
        print(
            f"  accumulator wire: {wire_bytes} bytes "
            f"({record['accumulator_wire']['savings']:.0%} under dict state); "
            f"chunkstats wire: {chunk_wire_bytes} bytes "
            f"({record['chunkstats_wire']['savings']:.0%} under dict state) "
            f"-> {BENCH_PATH.name}"
        )

    directory_speedup = tokenizer["directory"]["speedup"]
    assert directory_speedup >= MIN_DIRECTORY_SPEEDUP, (
        f"directory-profile tokenizer speedup below the "
        f"{MIN_DIRECTORY_SPEEDUP}x bar: {directory_speedup:.2f}x"
    )
    assert aggregate_speedup >= MIN_AGGREGATE_SPEEDUP, (
        f"aggregate tokenizer speedup below the "
        f"{MIN_AGGREGATE_SPEEDUP}x bar: {aggregate_speedup:.2f}x"
    )
    four = engine_rows[str(WORKER_COUNTS[-1])]
    assert four["ratio"] >= MIN_E2E_RATIO_AT_4_WORKERS, (
        f"fast parser made the {WORKER_COUNTS[-1]}-worker engine slower: "
        f"{four['fast_docs_per_sec']} vs {four['legacy_docs_per_sec']} docs/sec"
    )
    assert wire_bytes < dict_bytes, (
        f"accumulator wire form larger than dict state: "
        f"{wire_bytes} >= {dict_bytes} bytes"
    )
    assert tidy_speedup >= MIN_TIDY_SPEEDUP, (
        f"tidy fast path below the {MIN_TIDY_SPEEDUP}x bar: "
        f"{tidy_speedup:.2f}x"
    )
    tidy_stage = stage_seconds.get("tidy", 0.0)
    assert tidy_stage <= MAX_TIDY_STAGE_SECONDS, (
        f"engine tidy stage regressed past the PR 6 baseline band: "
        f"{tidy_stage:.4f}s > {MAX_TIDY_STAGE_SECONDS:.4f}s"
    )
    assert chunk_wire_bytes < chunk_dict_bytes, (
        f"ChunkStats wire form larger than dict state: "
        f"{chunk_wire_bytes} >= {chunk_dict_bytes} bytes"
    )

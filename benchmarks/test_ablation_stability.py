"""Design ablation: majority-schema stability under re-discovery.

The Introduction's case against manual wrappers is their fragility when
"the format of the data may change over time".  The discovered schema's
counterpart virtue is *stability*: re-discovering over fresh samples of
the same population should barely move it, while a real shift in
authoring habits should register.

Measured: pairwise stability scores (path-set Jaccard x support
agreement) between schemas discovered over (a) disjoint same-mix
samples, and (b) samples with flipped style mixes.
"""

from __future__ import annotations

from repro.corpus.generator import ResumeCorpusGenerator
from repro.corpus.styles import STYLES
from repro.evaluation.report import format_table
from repro.schema.diff import diff_schemas, schema_stability
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema
from repro.schema.paths import extract_paths

DOCS = 30


def discover(kb, converter, seed, style_weights=None):
    generator = ResumeCorpusGenerator(seed=seed, style_weights=style_weights)
    documents = [
        extract_paths(converter.convert(doc.html).root)
        for doc in generator.generate(DOCS)
    ]
    return MajoritySchema.from_frequent_paths(
        mine_frequent_paths(
            documents,
            sup_threshold=0.4,
            constraints=kb.constraints,
            candidate_labels=kb.concept_tags(),
        )
    )


def test_schema_stability(benchmark, kb, converter, capsys):
    lists_mix = {
        s: (1.0 if s in ("heading-list", "center-hr", "definition-list") else 0.0)
        for s in STYLES
    }
    tables_mix = {
        s: (1.0 if s in ("table", "font-soup", "paragraph") else 0.0)
        for s in STYLES
    }

    def run():
        same_a = discover(kb, converter, seed=101)
        same_b = discover(kb, converter, seed=202)
        style_a = discover(kb, converter, seed=303, style_weights=lists_mix)
        style_b = discover(kb, converter, seed=404, style_weights=tables_mix)
        return {
            "same population, fresh sample": (
                schema_stability(same_a, same_b),
                diff_schemas(same_a, same_b).summary(),
            ),
            "authoring mix flipped": (
                schema_stability(style_a, style_b),
                diff_schemas(style_a, style_b).summary(),
            ),
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["scenario", "stability", "diff"],
                [
                    [name, f"{score:.2f}", summary]
                    for name, (score, summary) in rows.items()
                ],
                title="[ablation] Majority-schema stability under re-discovery",
            )
        )

    same_score = rows["same population, fresh sample"][0]
    flipped_score = rows["authoring mix flipped"][0]
    assert same_score > 0.8
    assert flipped_score < same_score

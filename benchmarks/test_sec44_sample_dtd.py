"""Experiment E4 -- Section 4.4: the sample DTD run.

Paper: schema discovery over 1400+ resume documents produced a 20-element
DTD whose fragment is printed in the paper::

    <!ELEMENT resume ((#PCDATA), contact+, objective, education+, courses,
                      experience+, awards, skills, activities+, reference)>
    <!ELEMENT education ((#PCDATA), institute, date-entry)>
    <!ELEMENT date-entry ((#PCDATA), degree)>
    <!ELEMENT courses ((#PCDATA), date+)>
    ...

"Manual inspection of the DTD reveals that the schema discovered indeed
agrees with common sense of how a schema for resume documents should
look like."

Reproduction: 1400 synthetic resumes through the full pipeline.  Expect a
resume root whose content model lists the common sections, repetitive
education/experience entries below it, and courses containing date+.
"""

from __future__ import annotations

from repro.corpus.generator import ResumeCorpusGenerator
from repro.schema.dtd import Multiplicity, derive_dtd
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema
from repro.schema.paths import extract_paths

DOCS = 1400


def test_section44_sample_dtd(benchmark, kb, converter, capsys):
    def run():
        corpus = ResumeCorpusGenerator(seed=1966).generate_html(DOCS)
        documents = [
            extract_paths(converter.convert(html).root) for html in corpus
        ]
        frequent = mine_frequent_paths(
            documents,
            sup_threshold=0.4,
            constraints=kb.constraints,
            candidate_labels=kb.concept_tags(),
        )
        schema = MajoritySchema.from_frequent_paths(frequent)
        return derive_dtd(schema, documents), schema

    dtd, schema = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(f"[E4 / Section 4.4] DTD discovered over {DOCS} documents "
              f"({dtd.element_count()} elements; paper: 20):\n")
        print(dtd.render())

    # Shape: resume-rooted, common-sense sections, repetition markers.
    assert dtd.root_name == "resume"
    resume = dtd.element("resume")
    section_names = [p.name for p in resume.particles]
    for section in ("contact", "objective", "education", "experience", "skills"):
        assert section in section_names, section

    # Education and experience sections hold repetitive entries.
    education_children = dtd.element("education").particles
    assert education_children, "education must have entry structure"
    assert any(
        p.multiplicity is Multiplicity.PLUS for p in education_children
    ), "education entries should repeat"
    experience_children = dtd.element("experience").particles
    assert any(
        p.multiplicity is Multiplicity.PLUS for p in experience_children
    ), "experience entries should repeat"

    # The paper's courses (date+) shape.
    if "courses" in dtd.elements and dtd.element("courses").particles:
        courses = dtd.element("courses")
        assert courses.particle_for("date") is not None

    # Element count in the paper's ballpark.  Schema nodes can exceed DTD
    # elements: the same concept at several schema positions (DATE under
    # education, courses, experience) collapses to one declaration.
    assert 12 <= dtd.element_count() <= 30
    assert schema.element_count() >= dtd.element_count()

"""Experiment E9 -- Section 5 extension: the Document Mapping Component.

Paper: a companion component "converts non-conforming XML documents using
a tree-edit distance algorithm so that they eventually conform to the
derived DTD and can easily be integrated into an XML document
repository"; the majority schema is what makes these conversions
reasonable.

Reproduction: conform every converted document to the discovered DTD and
measure (a) conformance before/after, (b) repair operation counts, and
(c) the Zhang--Shasha tree-edit distance between each document and its
conformed version (the structural cost of integration).
"""

from __future__ import annotations

from repro.dom.treeops import clone, tree_size
from repro.evaluation.report import format_table
from repro.mapping.conform import conform_document
from repro.mapping.repository import XMLRepository
from repro.mapping.tree_edit import tree_edit_distance
from repro.mapping.validate import conforms
from repro.schema.dtd import derive_dtd
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema


def test_document_mapping_extension(benchmark, kb, converted50, documents50, capsys):
    schema = MajoritySchema.from_frequent_paths(
        mine_frequent_paths(
            documents50,
            sup_threshold=0.4,
            constraints=kb.constraints,
            candidate_labels=kb.concept_tags(),
        )
    )
    # The paper notes the recorded multiplicity information "can be used
    # to introduce optional elements, if this is desired in a specific
    # application scenario" -- integration is that scenario: sections a
    # document simply lacks should not be fabricated, so children present
    # in under 90% of their parents become optional.
    dtd = derive_dtd(schema, documents50, optional_threshold=0.9)

    def run():
        before = sum(1 for r in converted50 if conforms(r.root, dtd))
        repository = XMLRepository(dtd)
        distances = []
        operations = []
        for result in converted50:
            original = clone(result.root)
            repaired = clone(result.root)
            outcome = conform_document(repaired, dtd)
            operations.append(outcome.total_operations)
            distances.append(tree_edit_distance(original, repaired))
            repository.insert(clone(result.root))
        after = sum(
            1 for doc in repository.documents if conforms(doc, dtd)
        )
        return before, after, distances, operations, repository

    before, after, distances, operations, repository = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    n = len(converted50)
    avg_size = sum(tree_size(r.root) for r in converted50) / n
    with capsys.disabled():
        print()
        print(
            format_table(
                ["metric", "value"],
                [
                    ["documents", n],
                    ["conforming before mapping", before],
                    ["conforming after mapping", after],
                    ["avg repair operations/doc", f"{sum(operations) / n:.1f}"],
                    ["max repair operations", max(operations)],
                    ["avg tree-edit distance to conformed", f"{sum(distances) / n:.1f}"],
                    ["avg document size (nodes)", f"{avg_size:.1f}"],
                    ["repository repair rate", f"{repository.stats.repair_rate:.2f}"],
                ],
                title="[E9 / Section 5] Document mapping onto the majority DTD",
            )
        )

    # Every document integrates and conforms afterwards.
    assert after == n
    assert len(repository) == n
    # Before mapping, heterogeneous authorship means most documents do
    # NOT conform (that is why the component exists).
    assert before < n
    # The structural surgery is modest relative to document size: well
    # under the cost of discarding the document and synthesizing a
    # conforming one from scratch (~ 2x the average size).
    assert sum(distances) / n < avg_size

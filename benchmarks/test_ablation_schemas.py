"""Experiment E7 -- Section 1/5 ablation: majority schema vs DataGuide vs
lower-bound schema.

Paper (Introduction + Conclusions): a DataGuide provides "too much
detail" and a lower-bound schema "not enough" for integrating documents
into a repository; "our results show that such conversions are only
reasonable by using a majority schema".

Reproduction: derive a DTD from each schema type over the same corpus
and measure (a) schema size and (b) the repair cost of conforming every
document to it.  Expected shape: the DataGuide is much larger and, used
as an integration target, forces massive *fabrication* (every rare path
observed anywhere becomes part of the target, so documents need huge
insertion counts); the lower bound is tiny and forces massive
*destruction* (most recovered structure is dropped); the majority schema
sits between with the lowest total repair cost.
"""

from __future__ import annotations

from repro.dom.treeops import clone
from repro.evaluation.report import format_table
from repro.mapping.conform import conform_document
from repro.schema.dataguide import build_dataguide
from repro.schema.dtd import derive_dtd
from repro.schema.frequent import mine_frequent_paths
from repro.schema.lowerbound import build_lower_bound_schema
from repro.schema.majority import MajoritySchema


def repair_stats(results, dtd):
    total_ops = 0
    dropped = 0
    for result in results:
        copy = clone(result.root)
        outcome = conform_document(copy, dtd)
        total_ops += outcome.total_operations
        dropped += outcome.dropped
    return total_ops / len(results), dropped / len(results)


def test_schema_type_ablation(benchmark, kb, converted50, documents50, capsys):
    def run():
        majority = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(
                documents50,
                sup_threshold=0.4,
                constraints=kb.constraints,
                candidate_labels=kb.concept_tags(),
            )
        )
        dataguide = build_dataguide(documents50)
        lower = build_lower_bound_schema(documents50)
        out = {}
        for name, schema in (
            ("majority (sup=0.4)", majority),
            ("DataGuide (upper bound)", dataguide),
            ("lower bound (sup=1.0)", lower),
        ):
            dtd = derive_dtd(schema, documents50)
            ops, drops = repair_stats(converted50, dtd)
            out[name] = (schema.element_count(), dtd.element_count(), ops, drops)
        return out

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["schema", "schema nodes", "DTD elements", "repair ops/doc", "drops/doc"],
                [
                    [name, nodes, elements, f"{ops:.1f}", f"{drops:.1f}"]
                    for name, (nodes, elements, ops, drops) in table.items()
                ],
                title="[E7] Majority schema vs DataGuide vs lower bound",
            )
        )

    majority_nodes, _, majority_ops, majority_drops = table["majority (sup=0.4)"]
    guide_nodes, _, guide_ops, guide_drops = table["DataGuide (upper bound)"]
    lower_nodes, _, lower_ops, lower_drops = table["lower bound (sup=1.0)"]

    # Size ordering: lower < majority < DataGuide.
    assert lower_nodes < majority_nodes < guide_nodes
    # "Too much detail": targeting the DataGuide forces fabricating the
    # union of every structure ever observed -- repair cost explodes.
    assert guide_ops > majority_ops * 5
    # It never needs to drop anything, though: it accepts all content.
    assert guide_drops <= majority_drops
    # "Not enough detail": the lower bound destroys the most content.
    assert lower_drops > majority_drops
    # The majority schema is the cheapest integration target overall.
    assert majority_ops <= lower_ops
    assert majority_ops <= guide_ops

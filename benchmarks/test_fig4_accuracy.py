"""Experiment E1 -- Figure 4: data extraction accuracy.

Paper: 50 manually inspected resumes; avg 3.9 errors/document, avg 53.7
concept nodes/document, avg error 9.2% => accuracy 90.8%; histogram of
documents per error band peaking in the middle bands.

Reproduction: the same experiment with automatic error counting against
generator ground truth.  Expect the same shape: error percentage around
10%, histogram massed in the single-digit-to-low-teens bands.
"""

from __future__ import annotations

from repro.evaluation.accuracy import evaluate_accuracy
from repro.evaluation.report import format_histogram, format_table


def test_figure4_accuracy(benchmark, converter, corpus50, capsys):
    def run():
        pairs = [
            (converter.convert(doc.html).root, doc.ground_truth)
            for doc in corpus50
        ]
        return evaluate_accuracy(pairs)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["metric", "measured", "paper"],
                [
                    ["documents inspected", report.document_count, 50],
                    [
                        "avg errors / document",
                        f"{report.avg_errors_per_document:.1f}",
                        "3.9",
                    ],
                    [
                        "avg concept nodes / document",
                        f"{report.avg_concept_nodes_per_document:.1f}",
                        "53.7",
                    ],
                    ["avg error %", f"{report.avg_error_percentage:.1f}", "9.2"],
                    ["accuracy %", f"{report.accuracy:.1f}", "90.8"],
                ],
                title="[E1 / Figure 4] Data extraction accuracy",
            )
        )
        print()
        print(
            format_histogram(
                report.histogram(), title="documents per error-% band"
            )
        )

    # Shape assertions: the claim is ~90% accuracy with mid-band mass.
    assert 84.0 <= report.accuracy <= 97.0
    assert report.avg_concept_nodes_per_document > 30
    bands = dict(report.histogram())
    low_mass = bands.get("0-4", 0) + bands.get("4-8", 0) + bands.get("8-12", 0) + bands.get("12-16", 0)
    assert low_mass >= report.document_count * 0.6

"""Experiment E6 -- Section 2.4 ablation: HTML cleansing (Tidy).

Paper: "Although the heuristics are resilient to a certain extent in case
input HTML documents are not well-formed ..., experiments show that
applying HTML cleansing tools (such as HTML Tidy) can improve the
accuracy of resulting XML documents."

Reproduction: accuracy at increasing malformation rates, with the
cleanser on and off.  Expected shape: accuracy degrades with noise, and
cleansing recovers part of the loss at every noise level (most visibly
at high noise).
"""

from __future__ import annotations

from repro.convert.config import ConversionConfig
from repro.convert.pipeline import DocumentConverter
from repro.corpus.generator import ResumeCorpusGenerator
from repro.corpus.noise import NoiseConfig
from repro.evaluation.accuracy import evaluate_accuracy
from repro.evaluation.report import format_table

NOISE_RATES = (0.0, 0.5, 1.0)
DOCS = 30


def accuracy_at(kb, noise_rate: float, apply_tidy: bool) -> float:
    noise = NoiseConfig(rate=noise_rate) if noise_rate > 0 else None
    generator = ResumeCorpusGenerator(seed=1966, noise=noise)
    converter = DocumentConverter(kb, ConversionConfig(apply_tidy=apply_tidy))
    pairs = [
        (converter.convert(doc.html).root, doc.ground_truth)
        for doc in generator.generate(DOCS)
    ]
    return evaluate_accuracy(pairs).accuracy


def test_tidy_resilience_ablation(benchmark, kb, capsys):
    def run():
        return {
            (rate, tidy_on): accuracy_at(kb, rate, tidy_on)
            for rate in NOISE_RATES
            for tidy_on in (True, False)
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            f"{rate:.1f}",
            f"{table[(rate, True)]:.1f}",
            f"{table[(rate, False)]:.1f}",
            f"{table[(rate, True)] - table[(rate, False)]:+.1f}",
        ]
        for rate in NOISE_RATES
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["noise rate", "accuracy % (tidy)", "accuracy % (raw)", "delta"],
                rows,
                title="[E6 / Section 2.4] Cleansing ablation "
                "(paper: cleansing improves accuracy)",
            )
        )

    # Shape assertions:
    # 1. noise hurts (raw pipeline, clean vs full noise)
    assert table[(1.0, False)] < table[(0.0, False)]
    # 2. cleansing helps on noisy input
    assert table[(1.0, True)] >= table[(1.0, False)]
    # 3. on clean input cleansing must not hurt much
    assert table[(0.0, True)] >= table[(0.0, False)] - 2.0

"""Experiment E12 -- Section 5: the broader topic (product catalogs).

Paper (conclusions): "the goal of this more recent investigation is ...
to build XML repositories capturing linked HTML documents pertaining to
broader topics such as product catalogs or University Web sites."

Reproduction: the UNCHANGED pipeline -- same four rules, same miner,
same DTD derivation, same mapping -- run with the product-catalog
knowledge base over a synthetic catalog corpus.  Expected shape: high
extraction accuracy (catalog markup is more regular than resumes), a
catalog-shaped DTD, and full integration into a repository.
"""

from __future__ import annotations

from repro.concepts.catalog_kb import build_catalog_knowledge_base
from repro.convert.pipeline import DocumentConverter
from repro.corpus.catalog import CatalogCorpusGenerator
from repro.evaluation.accuracy import evaluate_accuracy
from repro.evaluation.report import format_table
from repro.mapping.repository import XMLRepository
from repro.schema.dtd import derive_dtd
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema
from repro.schema.paths import extract_paths

DOCS = 40


def test_catalog_topic(benchmark, capsys):
    catalog_kb = build_catalog_knowledge_base()
    converter = DocumentConverter(catalog_kb)
    docs = CatalogCorpusGenerator(seed=5).generate(DOCS)

    def run():
        results = [converter.convert(d.html) for d in docs]
        accuracy = evaluate_accuracy(
            [(r.root, d.ground_truth) for r, d in zip(results, docs)]
        )
        documents = [extract_paths(r.root) for r in results]
        schema = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(
                documents,
                sup_threshold=0.4,
                constraints=catalog_kb.constraints,
                candidate_labels=catalog_kb.concept_tags(),
            )
        )
        dtd = derive_dtd(schema, documents, optional_threshold=0.9)
        repository = XMLRepository(dtd)
        for result in results:
            repository.insert(result.root)
        return accuracy, dtd, repository

    accuracy, dtd, repository = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["metric", "value"],
                [
                    ["documents", DOCS],
                    ["accuracy %", f"{accuracy.accuracy:.1f}"],
                    ["avg concept nodes/doc", f"{accuracy.avg_concept_nodes_per_document:.1f}"],
                    ["DTD elements", dtd.element_count()],
                    ["documents integrated", len(repository)],
                    ["repair rate", f"{repository.stats.repair_rate:.2f}"],
                ],
                title="[E12 / Section 5] Broader topic: product catalogs "
                "(same pipeline, different knowledge base)",
            )
        )
        print()
        print(dtd.render())

    assert accuracy.accuracy > 90.0
    assert dtd.root_name == "catalog"
    assert {"price", "sku", "manufacturer"} <= set(dtd.elements)
    assert len(repository) == DOCS


def test_university_topic(benchmark, capsys):
    """The other broader topic Section 5 names: University Web sites
    (faculty directories), same pipeline again."""
    from repro.corpus.university import (
        DirectoryCorpusGenerator,
        build_university_knowledge_base,
    )

    univ_kb = build_university_knowledge_base()
    converter = DocumentConverter(univ_kb)
    docs = DirectoryCorpusGenerator(seed=4).generate(30)

    def run():
        results = [converter.convert(d.html) for d in docs]
        accuracy = evaluate_accuracy(
            [(r.root, d.ground_truth) for r, d in zip(results, docs)]
        )
        documents = [extract_paths(r.root) for r in results]
        schema = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(
                documents,
                sup_threshold=0.4,
                constraints=univ_kb.constraints,
                candidate_labels=univ_kb.concept_tags(),
            )
        )
        dtd = derive_dtd(schema, documents, optional_threshold=0.9)
        repository = XMLRepository(dtd)
        for result in results:
            repository.insert(result.root)
        return accuracy, dtd, repository

    accuracy, dtd, repository = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            format_table(
                ["metric", "value"],
                [
                    ["documents", len(docs)],
                    ["accuracy %", f"{accuracy.accuracy:.1f}"],
                    ["DTD elements", dtd.element_count()],
                    ["documents integrated", len(repository)],
                ],
                title="[E13 / Section 5] Broader topic: university faculty "
                "directories (same pipeline, third knowledge base)",
            )
        )
        print()
        print(dtd.render())

    assert accuracy.accuracy > 88.0
    assert dtd.root_name == "directory"
    assert "faculty" in dtd.elements
    assert len(repository) == len(docs)

"""The repository lifecycle: integrate, persist, reload, migrate.

The durable half of the Quixote system [11]: a repository built from one
corpus snapshot is saved to disk, reloaded later, and -- when the web's
authoring habits have drifted -- migrated onto a freshly re-discovered
DTD without losing any document.

Run:  python examples/repository_workflow.py [directory]
"""

import sys
import tempfile

from repro import (
    DocumentConverter,
    MajoritySchema,
    ResumeCorpusGenerator,
    XMLRepository,
    build_resume_knowledge_base,
    derive_dtd,
    extract_paths,
    mine_frequent_paths,
)
from repro.corpus.styles import STYLES
from repro.mapping.migrate import migrate_repository
from repro.mapping.persistence import load_repository, save_repository


def discover_dtd(kb, converter, docs):
    documents = [extract_paths(converter.convert(d.html).root) for d in docs]
    schema = MajoritySchema.from_frequent_paths(
        mine_frequent_paths(
            documents,
            sup_threshold=0.4,
            constraints=kb.constraints,
            candidate_labels=kb.concept_tags(),
        )
    )
    return derive_dtd(schema, documents, optional_threshold=0.9)


def main(directory: str) -> None:
    kb = build_resume_knowledge_base()
    converter = DocumentConverter(kb)

    # --- build and persist ------------------------------------------------
    old_mix = {s: (1.0 if s in ("heading-list", "center-hr") else 0.0) for s in STYLES}
    old_docs = ResumeCorpusGenerator(seed=1, style_weights=old_mix).generate(30)
    old_dtd = discover_dtd(kb, converter, old_docs)
    repository = XMLRepository(old_dtd)
    for doc in old_docs:
        repository.insert(converter.convert(doc.html).root)
    target = save_repository(repository, directory)
    print(f"saved {len(repository)} documents to {target}/")

    # --- reload -----------------------------------------------------------
    loaded = load_repository(target)
    print(f"reloaded {len(loaded)} documents "
          f"({loaded.stats.repaired} had been repaired on arrival)")

    # --- the web drifts: re-discover and migrate --------------------------
    new_mix = {s: (1.0 if s in ("table", "font-soup") else 0.0) for s in STYLES}
    new_docs = ResumeCorpusGenerator(seed=2, style_weights=new_mix).generate(30)
    new_dtd = discover_dtd(kb, converter, new_docs)
    migrated, report = migrate_repository(loaded, new_dtd)
    print(
        f"migrated onto the re-discovered DTD: "
        f"{report.migrated} documents changed "
        f"({report.total_operations} operations, avg tree-edit distance "
        f"{report.avg_edit_distance:.1f}), "
        f"{report.already_conforming} already conformed"
    )

    # Fresh documents from the new web integrate into the migrated store.
    for doc in new_docs[:10]:
        migrated.insert(converter.convert(doc.html).root)
    print(f"after absorbing new-web documents: {len(migrated)} total")

    degrees = migrated.values("RESUME//DEGREE")
    print(f"query across old and new documents: {len(degrees)} degrees found")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(sys.argv[1])
    else:
        with tempfile.TemporaryDirectory() as scratch:
            main(scratch + "/store")

"""The Bayes-classifier feedback loop of Section 2.3.1.

"It is thus advisable to use the ratio between identified and
unidentifiable tokens ... as a feedback to the user who then in turn has
to provide more training data to the classifier."

This example plays that user: it starts with an untrained hybrid tagger,
watches the unidentified-token ratio, labels a few more documents (using
corpus ground truth as the stand-in for manual labeling), retrains, and
repeats -- printing the ratio falling as training data accumulates.

Run:  python examples/train_bayes_tagger.py
"""

from repro import (
    ConversionConfig,
    DocumentConverter,
    MultinomialNaiveBayes,
    ResumeCorpusGenerator,
    build_resume_knowledge_base,
)
from repro.dom.treeops import iter_elements

ROUNDS = (2, 5, 10, 25, 50)
EVAL_DOCS = 20


def label_tokens(docs):
    """Harvest (token text, concept tag) labels from ground truth --
    the synthetic stand-in for the user labeling documents."""
    pairs = []
    for doc in docs:
        for element in iter_elements(doc.ground_truth):
            if element.get_val() and element.tag != "RESUME":
                pairs.append((element.get_val(), element.tag))
    return pairs


def main() -> None:
    kb = build_resume_knowledge_base()
    generator = ResumeCorpusGenerator(seed=2024)
    eval_docs = generator.generate(EVAL_DOCS)
    train_pool = generator.generate(max(ROUNDS), start_id=500)

    # Baseline: synonyms only.
    converter = DocumentConverter(kb, ConversionConfig(tagger="synonym"))
    results = [converter.convert(doc.html) for doc in eval_docs]
    baseline = sum(r.instance_stats.unidentified for r in results) / sum(
        r.instance_stats.total for r in results
    )
    print(f"synonyms only:            {baseline:.1%} tokens unidentified")

    # Feedback loop: grow the training set, retrain, reconvert.
    classifier = MultinomialNaiveBayes()
    labeled_through = 0
    for budget in ROUNDS:
        classifier.fit(label_tokens(train_pool[labeled_through:budget]))
        labeled_through = budget
        converter = DocumentConverter(
            kb, ConversionConfig(tagger="hybrid"), bayes=classifier
        )
        results = [converter.convert(doc.html) for doc in eval_docs]
        ratio = sum(r.instance_stats.unidentified for r in results) / sum(
            r.instance_stats.total for r in results
        )
        print(
            f"hybrid, {budget:3d} docs labeled: {ratio:.1%} tokens unidentified "
            f"(vocabulary {classifier.vocabulary_size} words, "
            f"{len(classifier.classes)} classes)"
        )


if __name__ == "__main__":
    main()

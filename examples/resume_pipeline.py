"""The full pipeline of the paper on a synthetic corpus:

    HTML resumes -> XML documents -> frequent paths -> majority schema
                 -> DTD -> conformed documents -> queryable repository

Run:  python examples/resume_pipeline.py [n_documents]
"""

import sys

from repro import (
    DocumentConverter,
    MajoritySchema,
    ResumeCorpusGenerator,
    XMLRepository,
    build_resume_knowledge_base,
    derive_dtd,
    extract_paths,
    mine_frequent_paths,
)


def main(count: int = 100) -> None:
    kb = build_resume_knowledge_base()
    converter = DocumentConverter(kb)

    # --- conversion (Section 2) -----------------------------------------
    corpus = ResumeCorpusGenerator(seed=1966).generate(count)
    results = [converter.convert(doc.html) for doc in corpus]
    print(f"converted {count} heterogeneous resumes "
          f"({len({d.style_name for d in corpus})} authoring styles)")

    # --- schema discovery (Section 3) -----------------------------------
    documents = [extract_paths(result.root) for result in results]
    frequent = mine_frequent_paths(
        documents,
        sup_threshold=0.4,
        constraints=kb.constraints,          # Section 4.2 pruning
        candidate_labels=kb.concept_tags(),
    )
    schema = MajoritySchema.from_frequent_paths(frequent)
    print(f"\nmajority schema ({schema.element_count()} nodes, "
          f"{frequent.nodes_explored} candidates explored):")
    print(schema.describe())

    # --- DTD derivation (Section 3.3) ------------------------------------
    dtd = derive_dtd(schema, documents, optional_threshold=0.9)
    print("\nderived DTD:")
    print(dtd.render())

    # --- integration (Section 5) -----------------------------------------
    repository = XMLRepository(dtd)
    for result in results:
        repository.insert(result.root)
    print(f"\nrepository: {len(repository)} documents integrated, "
          f"{repository.stats.repair_rate:.0%} needed repair "
          f"({repository.stats.total_repair_operations} operations total)")

    # --- querying ---------------------------------------------------------
    institutions = repository.values("RESUME/EDUCATION//INSTITUTION")
    print(f"\n{len(institutions)} institutions extracted; most common:")
    from collections import Counter

    for name, occurrences in Counter(institutions).most_common(5):
        print(f"  {occurrences:3d}  {name}")

    # --- homonyms (Section 2.2) --------------------------------------------
    from repro.schema.homonyms import homonym_contexts

    print("\ncontexts of the homonym concept DATE (Section 2.2):")
    for context in homonym_contexts(documents, "DATE", min_support=0.15):
        role = "organizes " + "/".join(sorted(context.child_labels)) if (
            context.is_organizing
        ) else "plain leaf"
        print(
            f"  under {context.parent_label or '(root)'}: "
            f"support {context.support:.2f}, {role}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100)

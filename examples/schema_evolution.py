"""Schema drift: what happens when the web's authoring habits change.

The paper's Introduction argues against manual wrappers because "the
format of the data may change over time.  Every change of format would
require a new handcrafted wrapper."  With schema discovery, you simply
re-discover -- and measure how much moved.

This example discovers the majority schema over an "old web" corpus
(classic heading/list resumes), then over a "new web" corpus (the same
content authored with tables and font soup), and prints the diff.

Run:  python examples/schema_evolution.py
"""

from repro import (
    DocumentConverter,
    MajoritySchema,
    ResumeCorpusGenerator,
    build_resume_knowledge_base,
    extract_paths,
    mine_frequent_paths,
)
from repro.corpus.styles import STYLES
from repro.schema.diff import diff_schemas, schema_stability


def discover(kb, converter, style_weights, seed, count=40):
    generator = ResumeCorpusGenerator(seed=seed, style_weights=style_weights)
    documents = [
        extract_paths(converter.convert(doc.html).root)
        for doc in generator.generate(count)
    ]
    frequent = mine_frequent_paths(
        documents,
        sup_threshold=0.4,
        constraints=kb.constraints,
        candidate_labels=kb.concept_tags(),
    )
    return MajoritySchema.from_frequent_paths(frequent)


def main() -> None:
    kb = build_resume_knowledge_base()
    converter = DocumentConverter(kb)

    old_mix = {s: (1.0 if s in ("heading-list", "center-hr") else 0.0) for s in STYLES}
    new_mix = {s: (1.0 if s in ("table", "font-soup") else 0.0) for s in STYLES}

    print("discovering schema over the 'old web' (heading/list authors)...")
    old_schema = discover(kb, converter, old_mix, seed=1)
    print(old_schema.describe())

    print("\ndiscovering schema over the 'new web' (table/font-soup authors)...")
    new_schema = discover(kb, converter, new_mix, seed=2)
    print(new_schema.describe())

    diff = diff_schemas(old_schema, new_schema)
    print(f"\nschema diff: {diff.summary()}")
    if diff.added:
        print("  paths that appeared:")
        for path in sorted(diff.added):
            print(f"    + {'/'.join(path)}")
    if diff.removed:
        print("  paths that disappeared:")
        for path in sorted(diff.removed):
            print(f"    - {'/'.join(path)}")
    if diff.support_drift:
        print("  support drift on shared paths:")
        for path, (before, after) in sorted(diff.support_drift.items()):
            print(f"    ~ {'/'.join(path)}: {before:.2f} -> {after:.2f}")

    print(
        f"\nstability score: {schema_stability(old_schema, new_schema):.2f} "
        "(1.0 = unchanged; re-sampling the SAME mix scores "
        f"{schema_stability(discover(kb, converter, old_mix, seed=3), old_schema):.2f})"
    )


if __name__ == "__main__":
    main()

"""Quickstart: convert one HTML resume to a concept-tagged XML document.

Run:  python examples/quickstart.py
"""

from repro import DocumentConverter, build_resume_knowledge_base, to_xml

HTML = """
<html><head><title>Jane Doe - Resume</title></head><body>
<h1>Resume of Jane Doe</h1>

<h2>Objective</h2>
<p>Seeking a software engineer position in databases.</p>

<h2>Education</h2>
<ul>
<li>June 1996, University of California at Davis, B.S. (Computer Science), GPA 3.8/4.0
<li>June 1998, Stanford University, M.S. (Computer Science)
</ul>

<h2>Experience</h2>
<p>Software Engineer, Verity Inc., Sunnyvale, 1998 - present</p>
<p>Intern, IBM Corporation, San Jose, Summer 1997</p>

<h2>Skills</h2>
<ul><li>C++</li><li>Java</li><li>Perl</li><li>Unix</li><li>Windows NT</li></ul>

<h2>References</h2>
<p>Available upon request.</p>
</body></html>
"""


def main() -> None:
    # 1. Domain knowledge: the paper's resume topic -- 24 concepts,
    #    233 instances, title/content constraints (Section 4).
    kb = build_resume_knowledge_base()

    # 2. The converter applies the four restructuring rules
    #    (tokenization, concept instance, grouping, consolidation).
    converter = DocumentConverter(kb)
    result = converter.convert(HTML)

    print(to_xml(result.root))
    print()
    print(f"concept nodes:        {result.concept_node_count}")
    print(f"tokens processed:     {result.instance_stats.total}")
    print(
        "unidentified tokens:  "
        f"{result.instance_stats.unidentified_ratio:.0%}"
        "  (Section 2.3.1: feed this back into the concept instances)"
    )


if __name__ == "__main__":
    main()

"""Topic crawling -> conversion -> integration, end to end.

The paper's corpus came from a topic-specific crawler [20]; this example
runs our simulated equivalent: a synthetic web of personal pages and
noise pages, a best-first crawler scoring pages by resume keywords, and
the conversion/discovery pipeline over whatever the crawl collects.

Run:  python examples/crawl_and_integrate.py
"""

from repro import (
    DocumentConverter,
    MajoritySchema,
    SimulatedWeb,
    TopicCrawler,
    XMLRepository,
    build_resume_knowledge_base,
    derive_dtd,
    extract_paths,
    mine_frequent_paths,
)


def main() -> None:
    kb = build_resume_knowledge_base()

    # --- the simulated web --------------------------------------------
    web = SimulatedWeb(resume_count=40, noise_count=160, seed=11)
    print(f"simulated web: {len(web)} pages, "
          f"{len(web.resume_urls())} of them resumes")

    # --- the topic crawler (keywords = the KB's title concepts) --------
    crawler = TopicCrawler.from_knowledge_base(web, kb)
    report = crawler.crawl()
    print(f"crawl: visited {report.visited} pages, collected "
          f"{len(report.collected_urls)} "
          f"(precision {report.precision:.2f}, recall {report.recall:.2f})")

    # --- conversion + schema discovery over the crawl result -----------
    converter = DocumentConverter(kb)
    results = [converter.convert(page.html) for page in report.collected]
    documents = [extract_paths(result.root) for result in results]
    frequent = mine_frequent_paths(
        documents,
        sup_threshold=0.4,
        constraints=kb.constraints,
        candidate_labels=kb.concept_tags(),
    )
    schema = MajoritySchema.from_frequent_paths(frequent)
    dtd = derive_dtd(schema, documents, optional_threshold=0.9)

    repository = XMLRepository(dtd)
    for result in results:
        repository.insert(result.root)

    print(f"\nintegrated {len(repository)} crawled resumes; "
          f"derived DTD has {dtd.element_count()} elements:")
    print(dtd.render())

    degrees = repository.values("RESUME//DEGREE")
    print(f"\nsample query -- {len(degrees)} degrees found, first five:")
    for value in degrees[:5]:
        print(f"  {value}")


if __name__ == "__main__":
    main()

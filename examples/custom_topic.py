"""Using the framework on a different topic: university course listings.

The paper's approach is topic-agnostic -- only the knowledge base is
domain-specific ("the minimal user input to this process are topic
specific concepts and concept instances").  This example builds a small
knowledge base for course-catalog pages and converts three differently
authored catalog fragments with the SAME rules used for resumes.

Run:  python examples/custom_topic.py
"""

from repro import (
    Concept,
    ConceptInstance,
    ConstraintSet,
    DocumentConverter,
    KnowledgeBase,
    MajoritySchema,
    derive_dtd,
    extract_paths,
    mine_frequent_paths,
    to_xml,
)
from repro.concepts import ConceptRole


def build_catalog_kb() -> KnowledgeBase:
    """A minimal course-catalog knowledge base."""
    concepts = [
        Concept(
            "catalog",
            [ConceptInstance("course catalog"), ConceptInstance("course listing"),
             ConceptInstance("schedule of classes")],
            role=ConceptRole.TITLE,
        ),
        Concept(
            "course",
            [ConceptInstance(r"\b[A-Z]{2,4}\s?\d{2,3}[A-Z]?\b(?![:\d])", is_regex=True),
             ConceptInstance("seminar"), ConceptInstance("lecture")],
        ),
        Concept(
            "instructor",
            [ConceptInstance("professor"), ConceptInstance("prof."),
             ConceptInstance("dr."), ConceptInstance("instructor"),
             ConceptInstance("staff")],
        ),
        Concept(
            "units",
            [ConceptInstance(r"\b\d\s?units?\b", is_regex=True),
             ConceptInstance(r"\b\d\s?credits?\b", is_regex=True)],
        ),
        Concept(
            "schedule",
            [ConceptInstance(r"\b(Mon|Tue|Wed|Thu|Fri|MWF|TTh|MW)\b", is_regex=True),
             ConceptInstance(r"\b\d{1,2}:\d{2}\s?(am|pm)?\b", is_regex=True)],
        ),
        Concept(
            "room",
            [ConceptInstance("hall"), ConceptInstance("room"),
             ConceptInstance("auditorium"), ConceptInstance("lab")],
        ),
    ]
    constraints = ConstraintSet(no_repeat_on_path=True, max_depth=3)
    constraints.add_depth("CATALOG", "=", 1)
    return KnowledgeBase("catalog", concepts, constraints)


PAGES = [
    # Author 1: headings and lists.
    """
    <html><head><title>CS Course Catalog</title></head><body>
    <h1>Course Catalog</h1>
    <h2>CS 101</h2>
    <ul><li>Professor Smith</li><li>4 units</li><li>MWF 10:00, Wellman Hall</li></ul>
    <h2>CS 152</h2>
    <ul><li>Dr. Jones</li><li>3 units</li><li>TTh 1:30, Young Hall</li></ul>
    </body></html>
    """,
    # Author 2: a table.
    """
    <html><head><title>Schedule of Classes</title></head><body>
    <table>
    <tr><td>ECS 140</td><td>Professor Gertz</td><td>4 units</td><td>MW 9:00</td></tr>
    <tr><td>ECS 165</td><td>Staff</td><td>4 units</td><td>TTh 11:00</td></tr>
    </table>
    </body></html>
    """,
    # Author 3: bold runs and breaks.
    """
    <html><head><title>Course Listing</title></head><body>
    <b>MAT 21A</b><br>Dr. Brown, 4 units, MWF 8:00, Storer Hall<br>
    <b>PHY 9B</b><br>Professor White, 5 units, TTh 2:10, Physics Lab<br>
    </body></html>
    """,
]


def main() -> None:
    kb = build_catalog_kb()
    converter = DocumentConverter(kb)

    results = [converter.convert(page) for page in PAGES]
    for index, result in enumerate(results):
        print(f"--- page {index + 1} ---")
        print(to_xml(result.root))
        print()

    documents = [extract_paths(result.root) for result in results]
    frequent = mine_frequent_paths(documents, sup_threshold=0.6)
    schema = MajoritySchema.from_frequent_paths(frequent)
    print("majority schema over the three catalogs:")
    print(schema.describe())
    print()
    print(derive_dtd(schema, documents).render())


if __name__ == "__main__":
    main()
